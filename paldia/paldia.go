// Package paldia is the public API of the Paldia reproduction: a simulated
// heterogeneous serverless platform (CPU and GPU worker nodes, containers,
// request batching, autoscaling) together with the paper's scheduling
// contribution — cost-aware hardware selection (Algorithm 1) and hybrid
// time/spatial GPU sharing driven by the Eq. (1) performance model — and
// every baseline the paper evaluates against.
//
// The typical flow is three lines: build a trace, pick a scheme, run.
//
//	tr := paldia.AzureTrace(42, 450, 25*time.Minute)
//	res := paldia.Run(paldia.Config{
//		Model:  paldia.MustModel("ResNet 50"),
//		Trace:  tr,
//		Scheme: paldia.NewPaldia(),
//	})
//	fmt.Printf("SLO compliance %.2f%% at $%.4f\n", res.SLOCompliance*100, res.Cost)
//
// The experiment harness behind every figure and table of the paper is
// available through Experiments, ExperimentIDs and RunExperiment.
package paldia

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config describes one serving simulation; see the field documentation on
// the underlying type for every knob (SLO, dispatch window, failure
// injection, host contention, ...).
type Config = core.Config

// Result carries everything a run produces: the per-request collector, SLO
// compliance, latency percentiles, dollar cost, energy, utilization,
// cold-start counters and the hardware-residency breakdown.
type Result = core.Result

// Scheme is a request-serving scheme (policy plus runtime options).
type Scheme = core.Scheme

// Trace is a request arrival trace.
type Trace = trace.Trace

// ModelSpec describes one inference workload.
type ModelSpec = model.Spec

// HardwareSpec describes one worker node type.
type HardwareSpec = hardware.Spec

// Run executes one serving simulation.
func Run(cfg Config) Result { return core.Run(cfg) }

// Workload pairs a model with its arrival trace for multi-tenant serving.
type Workload = core.Workload

// MultiConfig describes a multi-tenant simulation: several workloads
// co-served on one shared node at a time, each with its own batcher,
// predictor, split decision and container pool.
type MultiConfig = core.MultiConfig

// MultiResult aggregates a multi-tenant run.
type MultiResult = core.MultiResult

// RunMulti executes a multi-tenant serving simulation.
func RunMulti(cfg MultiConfig) MultiResult { return core.RunMulti(cfg) }

// DefaultSLO is the paper's 200 ms latency target.
const DefaultSLO = core.DefaultSLO

// --- Schemes -----------------------------------------------------------------

// NewPaldia returns the paper's scheme: Algorithm 1 hardware selection with
// EWMA prediction and hybrid time/spatial GPU sharing.
func NewPaldia() Scheme { return core.NewPaldia() }

// NewOracle returns the clairvoyant upper bound: Paldia's policies with
// exact future knowledge and pre-positioned hardware.
func NewOracle() Scheme { return core.NewOracle() }

// NewINFlessLlamaCost returns INFless/Llama ($): cheapest isolated-capable
// hardware, every batch spatially shared via MPS.
func NewINFlessLlamaCost() Scheme { return core.NewINFlessLlamaCost() }

// NewINFlessLlamaPerf returns INFless/Llama (P): always the most performant
// GPU, every batch spatially shared.
func NewINFlessLlamaPerf() Scheme { return core.NewINFlessLlamaPerf() }

// NewMoleculeCost returns Molecule (beta) ($): cheapest isolated-capable
// hardware, time sharing only.
func NewMoleculeCost() Scheme { return core.NewMoleculeCost() }

// NewMoleculePerf returns Molecule (beta) (P): most performant GPU, time
// sharing only.
func NewMoleculePerf() Scheme { return core.NewMoleculePerf() }

// NewOfflineHybrid pins hardware and queues a fixed fraction of every
// window's requests — the motivation study's offline-swept hybrid.
func NewOfflineHybrid(hw HardwareSpec, queuedFraction float64) Scheme {
	return core.NewOfflineHybrid(hw, queuedFraction)
}

// NewPaldiaPinned keeps Paldia's hybrid splitting on pinned hardware (the
// resource-exhaustion configuration).
func NewPaldiaPinned(hw HardwareSpec) Scheme { return core.NewPaldiaPinned(hw) }

// StandardSchemes returns the paper's five evaluated schemes in plotting
// order.
func StandardSchemes() []Scheme { return core.StandardSchemes() }

// Policy is the extension point for custom serving schemes: a
// hardware-selection rule plus a GPU-sharing split. See the interface
// documentation for the contract of each method.
type Policy = core.Policy

// State is the serving snapshot a Policy decides on.
type State = core.State

// NewScheme wraps a custom Policy into a runnable Scheme.
func NewScheme(p Policy) Scheme { return Scheme{Policy: p} }

// --- Catalogs ----------------------------------------------------------------

// Models returns the 16 evaluated workloads (12 vision, 4 language).
func Models() []ModelSpec { return model.Catalog() }

// VisionModels returns the 12 image-classification workloads.
func VisionModels() []ModelSpec { return model.VisionModels() }

// LanguageModels returns the 4 sequence-classification workloads.
func LanguageModels() []ModelSpec { return model.LanguageModels() }

// Model looks a workload up by name.
func Model(name string) (ModelSpec, bool) { return model.ByName(name) }

// MustModel is Model that panics on unknown names.
func MustModel(name string) ModelSpec { return model.MustByName(name) }

// Hardware returns the Table II node catalog.
func Hardware() []HardwareSpec { return hardware.Catalog() }

// HardwareByName looks a node type up by instance or accelerator name.
func HardwareByName(name string) (HardwareSpec, bool) { return hardware.ByName(name) }

// MostPerformantGPU returns the V100 node — the hardware the (P) baselines
// pin themselves to.
func MostPerformantGPU() HardwareSpec { return hardware.MostPerformant(hardware.GPU) }

// --- Traces ------------------------------------------------------------------

// AzureTrace synthesizes the paper's Azure serverless sample: sparse
// background traffic with occasional surges, peak:mean ~12.
func AzureTrace(seed uint64, peakRPS float64, dur time.Duration) *Trace {
	return trace.Azure(sim.NewRNG(seed), peakRPS, dur)
}

// WikipediaTrace synthesizes the diurnal 5-day Wikipedia trace,
// time-compressed by the given factor (use trace-default 48 via
// DefaultWikipediaCompression).
func WikipediaTrace(seed uint64, peakRPS float64, days, compression int) *Trace {
	return trace.Wikipedia(sim.NewRNG(seed), peakRPS, days, compression)
}

// DefaultWikipediaCompression is the default time compression for the
// Wikipedia trace.
const DefaultWikipediaCompression = trace.WikipediaCompression

// TwitterTrace synthesizes the erratic, dense Twitter trace at the target
// mean rate.
func TwitterTrace(seed uint64, meanRPS float64, dur time.Duration) *Trace {
	return trace.Twitter(sim.NewRNG(seed), meanRPS, dur)
}

// PoissonTrace synthesizes a constant-rate Poisson arrival process.
func PoissonTrace(seed uint64, rateRPS float64, dur time.Duration) *Trace {
	return trace.Poisson(sim.NewRNG(seed), rateRPS, dur)
}

// StableTrace synthesizes the gently varying trace of the motivation study.
func StableTrace(seed uint64, meanRPS float64, dur time.Duration) *Trace {
	return trace.Stable(sim.NewRNG(seed), meanRPS, dur)
}

// LoadTrace parses a trace from the one-arrival-per-line format written by
// SaveTrace and `paldia-trace -dump`, so real traces can be replayed.
func LoadTrace(r io.Reader, name string) (*Trace, error) { return trace.Load(r, name) }

// SaveTrace writes a trace in the loadable line format.
func SaveTrace(w io.Writer, t *Trace) error { return t.Save(w) }

// TraceFromArrivals builds a trace from raw arrival offsets.
func TraceFromArrivals(name string, arrivals []time.Duration, duration time.Duration) *Trace {
	return trace.FromArrivals(name, arrivals, duration)
}

// --- Predictors ----------------------------------------------------------------

// Predictor estimates near-future request rates; plug a custom one in via
// Config.NewPredictor (the paper calls its predictor "lightweight,
// pluggable").
type Predictor = predict.Predictor

// NewEWMAPredictor returns the paper's default: an asymmetric EWMA with a
// noise-gated trend over the given observation window.
func NewEWMAPredictor(window time.Duration) Predictor { return predict.NewEWMA(window) }

// StaticPredictor always predicts a fixed rate (tests and ablations).
func StaticPredictor(rps float64) Predictor { return predict.Static{RPS: rps} }

// --- Experiments ---------------------------------------------------------------

// ExperimentOptions control experiment scale; the zero value means defaults
// (seed 42, 3 repetitions, paper-scale traces).
type ExperimentOptions = experiments.Options

// ExperimentTable is a rendered experiment result.
type ExperimentTable = experiments.Table

// Pool bounds how many simulations execute at once; one Pool can be shared
// by every concurrently running comparison so nested fan-out never
// oversubscribes the machine. Pool.Map(n, fn) runs indexed work items and
// returns once all finished; collecting results by index keeps output
// byte-identical to a serial loop at any pool size.
type Pool = experiments.Pool

// NewPool returns a pool admitting n simulations at once (minimum 1).
func NewPool(n int) *Pool { return experiments.NewPool(n) }

// ExperimentIDs lists the regenerable figures and tables.
func ExperimentIDs() []string { return experiments.Order() }

// RunExperiment regenerates one of the paper's figures or tables.
func RunExperiment(id string, o ExperimentOptions) (*ExperimentTable, error) {
	r, ok := experiments.Registry()[id]
	if !ok {
		return nil, fmt.Errorf("paldia: unknown experiment %q", id)
	}
	return r(o), nil
}

// RunAllExperiments regenerates the full evaluation in the paper's order.
func RunAllExperiments(o ExperimentOptions) []*ExperimentTable {
	return experiments.All(o)
}

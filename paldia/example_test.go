package paldia_test

import (
	"fmt"
	"time"

	"repro/paldia"
)

// The catalogs are static, so their facts make stable documentation.
func ExampleModels() {
	fmt.Println(len(paldia.Models()), "workloads:",
		len(paldia.VisionModels()), "vision,", len(paldia.LanguageModels()), "language")
	// Output: 16 workloads: 12 vision, 4 language
}

func ExampleHardware() {
	for _, hw := range paldia.Hardware() {
		if hw.IsGPU() {
			fmt.Printf("%s (%s) $%.2f/h\n", hw.Name, hw.Accel, hw.CostPerHour)
		}
	}
	// Output:
	// g3s.xlarge (M60) $0.75/h
	// p2.xlarge (K80) $0.90/h
	// p3.2xlarge (V100) $3.06/h
}

func ExampleMustModel() {
	m := paldia.MustModel("ResNet 50")
	fmt.Println(m.Name, m.Domain, "peak", m.DefaultPeakRPS(), "rps")
	// Output: ResNet 50 vision peak 450 rps
}

func ExampleStandardSchemes() {
	for _, s := range paldia.StandardSchemes() {
		fmt.Println(s.Name())
	}
	// Output:
	// Molecule (beta) (P)
	// INFless/Llama (P)
	// Molecule (beta) ($)
	// INFless/Llama ($)
	// Paldia
}

// Run executes a full serving simulation; the result carries SLO compliance,
// latency percentiles, cost, and the hardware-residency breakdown.
func ExampleRun() {
	m := paldia.MustModel("ResNet 50")
	tr := paldia.AzureTrace(42, m.DefaultPeakRPS(), 2*time.Minute)
	res := paldia.Run(paldia.Config{Model: m, Trace: tr, Scheme: paldia.NewPaldia()})
	fmt.Println("served every request:", res.Requests == tr.Count())
	// Output: served every request: true
}

// RunMulti co-serves several workloads on one shared node at a time.
func ExampleRunMulti() {
	res := paldia.RunMulti(paldia.MultiConfig{
		Workloads: []paldia.Workload{
			{Model: paldia.MustModel("SENet 18"), Trace: paldia.StableTrace(1, 200, time.Minute)},
			{Model: paldia.MustModel("MobileNet"), Trace: paldia.StableTrace(2, 100, time.Minute)},
		},
		Scheme: paldia.NewPaldia(),
	})
	fmt.Println("tenants:", len(res.PerWorkload))
	// Output: tenants: 2
}

// AzureTrace synthesizes the paper's bursty serverless trace; the generators
// are deterministic given a seed.
func ExampleAzureTrace() {
	a := paldia.AzureTrace(7, 450, 5*time.Minute)
	b := paldia.AzureTrace(7, 450, 5*time.Minute)
	fmt.Println("deterministic:", a.Count() == b.Count())
	// Output: deterministic: true
}

// RunExperiment regenerates one of the paper's figures or tables.
func ExampleRunExperiment() {
	t, err := paldia.RunExperiment("table2", paldia.ExperimentOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(t.ID, "rows:", len(t.Rows))
	// Output: table2 rows: 6
}

// Package repro is a from-scratch Go reproduction of "Paldia: Enabling
// SLO-Compliant and Cost-Effective Serverless Computing on Heterogeneous
// Hardware" (IPDPS 2024).
//
// The public API lives in the paldia subpackage; the simulated substrate and
// the scheduling policies live under internal/. The benchmarks in
// bench_test.go regenerate every figure and table of the paper's evaluation
// at reduced scale; cmd/paldia-experiments regenerates them at full scale.
// See README.md, DESIGN.md and EXPERIMENTS.md.
package repro

// Hybrid sharing (Insight 2): on a fixed GPU at its capacity limit, sweep
// the fraction of requests that are time-shared (queued) versus spatially
// shared (MPS) and watch the tradeoff the paper's Eq. (1) navigates —
// all-spatial suffers co-location interference, all-queued suffers queueing
// delay, and the sweet spot sits in between. This is the Offline Hybrid of
// the paper's motivation study, driven through the public API.
package main

import (
	"fmt"
	"strings"
	"time"

	"repro/paldia"
)

func main() {
	// The cost-effective M60 is where the tradeoff bites: ResNet 50's
	// bandwidth demand (FBR ~0.6) makes co-location expensive there, while
	// queueing at near-capacity load is expensive everywhere.
	m := paldia.MustModel("ResNet 50")
	m60, _ := paldia.HardwareByName("M60")
	v100 := m60

	// A Poisson flood at roughly the M60's serial capacity for ResNet 50.
	const rate = 650
	tr := paldia.PoissonTrace(7, rate, 5*time.Minute)

	fmt.Printf("ResNet 50 on %s at %d rps (serial capacity regime)\n\n", v100.Accel, int(rate))
	fmt.Printf("%-16s %14s %12s\n", "queued fraction", "SLO compliance", "P99")
	best, bestCompl := 0.0, -1.0
	for f := 0.0; f <= 1.001; f += 0.25 {
		res := paldia.Run(paldia.Config{
			Model:           m,
			Trace:           tr,
			Scheme:          paldia.NewOfflineHybrid(v100, f),
			InitialHardware: &v100,
		})
		bar := strings.Repeat("#", int(res.SLOCompliance*30))
		fmt.Printf("%-16.2f %13.2f%% %12v %s\n",
			f, res.SLOCompliance*100, res.P99.Round(time.Millisecond), bar)
		if res.SLOCompliance > bestCompl {
			bestCompl, best = res.SLOCompliance, f
		}
	}

	res := paldia.Run(paldia.Config{
		Model:           m,
		Trace:           tr,
		Scheme:          paldia.NewPaldiaPinned(v100),
		InitialHardware: &v100,
	})
	fmt.Printf("\nbest fixed fraction: %.2f (%.2f%%)\n", best, bestCompl*100)
	fmt.Printf("Paldia's online Eq.(1) split: %.2f%% — no offline sweep needed.\n",
		res.SLOCompliance*100)
}

// Quickstart: serve ResNet 50 under the Azure serverless trace with the
// Paldia scheduler and print the headline metrics — SLO compliance, tail
// latency, dollar cost, and which hardware the scheduler actually used.
package main

import (
	"fmt"
	"sort"
	"time"

	"repro/paldia"
)

func main() {
	// A 25-minute bursty trace peaking at ResNet 50's paper rate (450 rps).
	m := paldia.MustModel("ResNet 50")
	tr := paldia.AzureTrace(42, m.DefaultPeakRPS(), 25*time.Minute)
	fmt.Printf("trace: %d requests, mean %.0f rps, peak %.0f rps\n\n",
		tr.Count(), tr.MeanRPS(), tr.PeakRPS(time.Second))

	res := paldia.Run(paldia.Config{
		Model:  m,
		Trace:  tr,
		Scheme: paldia.NewPaldia(),
	})

	fmt.Printf("scheme          %s\n", res.Scheme)
	fmt.Printf("SLO compliance  %.2f%% (SLO %v)\n", res.SLOCompliance*100, paldia.DefaultSLO)
	fmt.Printf("latency         P50 %v  P99 %v\n", res.P50, res.P99)
	fmt.Printf("cost            $%.4f (CPU $%.4f + GPU $%.4f)\n", res.Cost, res.CPUCost, res.GPUCost)
	fmt.Printf("hardware used:\n")
	names := make([]string, 0, len(res.HeldBySpec))
	for name := range res.HeldBySpec {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-12s %6.0fs\n", name, res.HeldBySpec[name].Seconds())
	}
}

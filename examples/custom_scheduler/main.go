// Custom scheduler: the Policy interface is the extension point downstream
// users plug their own serving schemes into. This example builds a naive
// "always the cheapest GPU, always hybrid-split 50/50" policy, runs it
// against Paldia on the same trace, and shows why the paper's modelled
// split and rate-aware hardware selection matter.
package main

import (
	"fmt"
	"time"

	"repro/paldia"
)

// cheapestGPUHalfSplit always serves on the cheapest GPU and queues half of
// every window's requests regardless of load.
type cheapestGPUHalfSplit struct {
	gpu paldia.HardwareSpec
}

func (p *cheapestGPUHalfSplit) Name() string { return "CheapestGPU 50/50" }

func (p *cheapestGPUHalfSplit) DesiredHardware(*paldia.State) paldia.HardwareSpec {
	return p.gpu
}

func (p *cheapestGPUHalfSplit) SplitY(_ *paldia.State, n int) int { return n / 2 }

func (p *cheapestGPUHalfSplit) WaitLimit() int { return 1 }

func main() {
	var cheapest paldia.HardwareSpec
	for _, hw := range paldia.Hardware() {
		if hw.IsGPU() && (cheapest.Name == "" || hw.CostPerHour < cheapest.CostPerHour) {
			cheapest = hw
		}
	}

	// VGG 19's 225 rps peak is beyond the cheapest GPU — a policy that never
	// escalates cannot survive the surges.
	m := paldia.MustModel("VGG 19")
	tr := paldia.AzureTrace(42, m.DefaultPeakRPS(), 25*time.Minute)

	custom := paldia.NewScheme(&cheapestGPUHalfSplit{gpu: cheapest})
	for _, s := range []paldia.Scheme{custom, paldia.NewPaldia()} {
		res := paldia.Run(paldia.Config{Model: m, Trace: tr, Scheme: s})
		fmt.Printf("%-20s compliance %6.2f%%  P99 %-10v cost $%.4f\n",
			res.Scheme, res.SLOCompliance*100, res.P99.Round(time.Millisecond), res.Cost)
	}
	fmt.Println("\nThe pinned cheap GPU drowns in VGG 19's surges no matter how the")
	fmt.Println("50/50 split shuffles them; Algorithm 1 escalates hardware ahead of the")
	fmt.Println("peak and Eq. (1) adapts the split to the live device state.")
}

// Compare schemes: a platform operator deciding between serving policies
// runs the paper's five schemes (plus the clairvoyant Oracle bound) on the
// same workload and trace, and reads off the compliance/cost frontier — the
// reproduction of the paper's central comparison, on any model you pick.
//
//	go run ./examples/compare_schemes            # ResNet 50
//	go run ./examples/compare_schemes "VGG 19"
package main

import (
	"fmt"
	"os"
	"time"

	"repro/paldia"
)

func main() {
	name := "ResNet 50"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	m, ok := paldia.Model(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown model %q\n", name)
		os.Exit(1)
	}

	tr := paldia.AzureTrace(42, m.DefaultPeakRPS(), 25*time.Minute)
	schemes := append(paldia.StandardSchemes(), paldia.NewOracle())

	fmt.Printf("%-22s %14s %12s %10s %9s\n", "scheme", "SLO compliance", "P99", "cost", "switches")
	var basePerf, baseCost float64
	for _, s := range schemes {
		res := paldia.Run(paldia.Config{Model: m, Trace: tr, Scheme: s})
		fmt.Printf("%-22s %13.2f%% %12v %10.4f %9d\n",
			res.Scheme, res.SLOCompliance*100, res.P99.Round(time.Millisecond),
			res.Cost, res.Switches)
		switch res.Scheme {
		case "INFless/Llama (P)":
			basePerf = res.Cost
		case "Paldia":
			baseCost = res.Cost
		}
	}
	if basePerf > 0 && baseCost > 0 {
		fmt.Printf("\nPaldia costs %.0f%% less than the always-V100 (P) schemes.\n",
			(1-baseCost/basePerf)*100)
	}
}

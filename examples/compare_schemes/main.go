// Compare schemes: a platform operator deciding between serving policies
// runs the paper's five schemes (plus the clairvoyant Oracle bound) on the
// same workload and trace, and reads off the compliance/cost frontier — the
// reproduction of the paper's central comparison, on any model you pick.
//
//	go run ./examples/compare_schemes            # ResNet 50
//	go run ./examples/compare_schemes "VGG 19"
//	go run ./examples/compare_schemes -j 6       # all six schemes at once
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/paldia"
)

func main() {
	jobs := flag.Int("j", 1, "concurrent scheme simulations; the table is identical at any -j")
	flag.Parse()
	name := "ResNet 50"
	if flag.NArg() > 0 {
		name = flag.Arg(0)
	}
	m, ok := paldia.Model(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown model %q\n", name)
		os.Exit(1)
	}

	tr := paldia.AzureTrace(42, m.DefaultPeakRPS(), 25*time.Minute)
	schemes := append(paldia.StandardSchemes(), paldia.NewOracle())

	// Each scheme is an independent simulation; fan them out over a pool and
	// collect by index, so rows print in scheme order at any parallelism.
	var pool *paldia.Pool
	if *jobs > 1 {
		pool = paldia.NewPool(*jobs)
	}
	results := make([]paldia.Result, len(schemes))
	pool.Map(len(schemes), func(i int) {
		results[i] = paldia.Run(paldia.Config{Model: m, Trace: tr, Scheme: schemes[i]})
	})

	fmt.Printf("%-22s %14s %12s %10s %9s\n", "scheme", "SLO compliance", "P99", "cost", "switches")
	var basePerf, baseCost float64
	for _, res := range results {
		fmt.Printf("%-22s %13.2f%% %12v %10.4f %9d\n",
			res.Scheme, res.SLOCompliance*100, res.P99.Round(time.Millisecond),
			res.Cost, res.Switches)
		switch res.Scheme {
		case "INFless/Llama (P)":
			basePerf = res.Cost
		case "Paldia":
			baseCost = res.Cost
		}
	}
	if basePerf > 0 && baseCost > 0 {
		fmt.Printf("\nPaldia costs %.0f%% less than the always-V100 (P) schemes.\n",
			(1-baseCost/basePerf)*100)
	}
}

// LLM serving: the paper's sensitivity study as a scenario. Large language
// models have execution times, memory footprints and Fractional Bandwidth
// Requirements far above the vision models' — a single BERT job already
// saturates the cheaper GPUs — so every cost-aware scheme is forced onto
// brawnier hardware, and hybrid sharing is what keeps the cheaper choices
// viable at all. This example serves all four language models and shows
// where each scheme's money went.
package main

import (
	"fmt"
	"time"

	"repro/paldia"
)

func main() {
	schemes := []paldia.Scheme{
		paldia.NewINFlessLlamaPerf(),
		paldia.NewINFlessLlamaCost(),
		paldia.NewPaldia(),
	}

	for _, m := range paldia.LanguageModels() {
		tr := paldia.AzureTrace(42, m.DefaultPeakRPS(), 25*time.Minute)
		fmt.Printf("== %s (peak %.0f rps) ==\n", m.Name, m.DefaultPeakRPS())
		for _, s := range schemes {
			res := paldia.Run(paldia.Config{Model: m, Trace: tr, Scheme: s})
			gpuShare := 0.0
			if res.Cost > 0 {
				gpuShare = res.GPUCost / res.Cost * 100
			}
			fmt.Printf("  %-20s compliance %6.2f%%  cost $%.4f (GPU %2.0f%%)  P99 %v\n",
				res.Scheme, res.SLOCompliance*100, res.Cost, gpuShare,
				res.P99.Round(time.Millisecond))
		}
		fmt.Println()
	}
}

// LLM serving: the paper's sensitivity study as a scenario. Large language
// models have execution times, memory footprints and Fractional Bandwidth
// Requirements far above the vision models' — a single BERT job already
// saturates the cheaper GPUs — so every cost-aware scheme is forced onto
// brawnier hardware, and hybrid sharing is what keeps the cheaper choices
// viable at all. This example serves all four language models and shows
// where each scheme's money went.
//
//	go run ./examples/llm_serving
//	go run ./examples/llm_serving -j 4    # fan the (model, scheme) grid out
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/paldia"
)

func main() {
	jobs := flag.Int("j", 1, "concurrent simulations across the (model, scheme) grid; output is identical at any -j")
	flag.Parse()

	schemes := []paldia.Scheme{
		paldia.NewINFlessLlamaPerf(),
		paldia.NewINFlessLlamaCost(),
		paldia.NewPaldia(),
	}
	models := paldia.LanguageModels()

	// Every (model, scheme) cell is an independent simulation; fan the flat
	// grid out over a pool and collect by index, then print the nested loops
	// in order — the report is identical at any parallelism.
	var pool *paldia.Pool
	if *jobs > 1 {
		pool = paldia.NewPool(*jobs)
	}
	results := make([]paldia.Result, len(models)*len(schemes))
	pool.Map(len(results), func(i int) {
		m := models[i/len(schemes)]
		tr := paldia.AzureTrace(42, m.DefaultPeakRPS(), 25*time.Minute)
		results[i] = paldia.Run(paldia.Config{Model: m, Trace: tr, Scheme: schemes[i%len(schemes)]})
	})

	for mi, m := range models {
		fmt.Printf("== %s (peak %.0f rps) ==\n", m.Name, m.DefaultPeakRPS())
		for si := range schemes {
			res := results[mi*len(schemes)+si]
			gpuShare := 0.0
			if res.Cost > 0 {
				gpuShare = res.GPUCost / res.Cost * 100
			}
			fmt.Printf("  %-20s compliance %6.2f%%  cost $%.4f (GPU %2.0f%%)  P99 %v\n",
				res.Scheme, res.SLOCompliance*100, res.Cost, gpuShare,
				res.P99.Round(time.Millisecond))
		}
		fmt.Println()
	}
}

// Multi-tenant serving: three models co-served on one shared node at a time
// — the setting of the paper's motivation experiment, through the full
// runtime. The scheduler must pick hardware capable of the aggregate and
// split each tenant's requests separately; co-located tenants genuinely
// interfere on the shared GPU.
package main

import (
	"fmt"
	"time"

	"repro/paldia"
)

func main() {
	const dur = 10 * time.Minute
	workloads := []paldia.Workload{
		{Model: paldia.MustModel("SENet 18"), Trace: paldia.StableTrace(1, 400, dur)},
		{Model: paldia.MustModel("DenseNet 121"), Trace: paldia.StableTrace(2, 100, dur)},
		{Model: paldia.MustModel("MobileNet"), Trace: paldia.StableTrace(3, 150, dur)},
	}

	for _, s := range []paldia.Scheme{
		paldia.NewMoleculeCost(),
		paldia.NewINFlessLlamaCost(),
		paldia.NewPaldia(),
	} {
		res := paldia.RunMulti(paldia.MultiConfig{Workloads: workloads, Scheme: s})
		fmt.Printf("=== %s ===\n", res.Scheme)
		for i, col := range res.PerWorkload {
			fmt.Printf("  %-14s compliance %6.2f%%  P99 %v\n",
				workloads[i].Model.Name, col.SLOCompliance()*100,
				col.Percentile(99).Round(time.Millisecond))
		}
		fmt.Printf("  combined %.2f%% at $%.4f\n\n", res.SLOCompliance*100, res.Cost)
	}
}

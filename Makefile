# Paldia reproduction — common targets.

GO ?= go

# Pinned so lint runs are reproducible across CI and laptops; bump
# deliberately (the invocation fetches exactly this version via the module
# proxy, no global install needed).
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: build test vet lint race bench bench-smoke scale-smoke live-smoke \
	experiments figures fuzz fuzz-smoke test-invariants test-determinism \
	pgo profile clean

# go build applies cmd/paldia-sim/default.pgo automatically (profile-guided
# optimization); refresh it with `make pgo` after hot-path changes.
build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting + static analysis gate (the CI lint job). gofmt -l prints
# offending files and fails the target if any exist.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

test: vet
	$(GO) test ./...

# Each simulation is single-goroutine, but the experiment runner fans cells
# out over a worker pool; -race plus the -cpu 1,4 equality run guard the
# collection-by-index determinism contract.
race:
	$(GO) test -race ./...
	$(GO) test -race -cpu 1,4 -run 'SerialParallel|SharedPool' ./internal/experiments/
	$(GO) test -race -cpu 1,4 -run 'OnlineConcurrentSnapshot' ./internal/metrics/

# Benchstat-comparable benchmark pass (3 counts): one benchmark per paper
# figure/table plus the serial-vs-parallel grid pair. Compare runs with
#   benchstat old.txt BENCH_parallel.txt
# The second step regenerates the machine-readable scheduling hot-path
# numbers (ns/op, B/op, allocs/op, Fig. 3 wall clock) as BENCH_sched.json.
bench:
	$(GO) test -bench=. -benchmem -count=3 -run '^$$' . | tee BENCH_parallel.txt
	$(GO) run ./cmd/paldia-bench -out BENCH_sched.json

# One iteration of every benchmark, as a CI smoke test, plus the scheduling
# gate: paldia-bench -gate fails if any Eq. (1) probing or hardware-selection
# path allocates again, or if any gated benchmark's ns/op regresses more than
# 25% against the committed BENCH_sched.json (ratios are normalized by their
# median first, so raw host-speed differences cancel). To re-baseline after an
# intentional perf change, run `make bench` and commit the refreshed
# BENCH_sched.json.
bench-smoke:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' .
	$(GO) run ./cmd/paldia-bench -gate

# Ten-million-request sharded streaming run under a hard heap ceiling — the
# scale mode's constant-memory contract (lazy curve arrivals + online metrics
# + shared partitioned rate curve). Observed peak is ~80 MiB, dominated by
# the 91h rate curve; 192 MiB only trips if an O(requests) buffer or a
# per-lane curve copy sneaks back into the streaming path.
scale-smoke:
	$(GO) run ./cmd/paldia-sim -stream -requests 10000000 -tenants 4 -shards 4 -max-heap-mib 192

# Refresh the committed PGO profile from the representative sharded
# 10M-request streaming run (the same workload as scale-smoke). go build
# picks cmd/paldia-sim/default.pgo up automatically, so committing the
# refreshed profile is all it takes for every subsequent build — local and
# CI — to be guided by it.
pgo:
	$(GO) run ./cmd/paldia-sim -stream -requests 10000000 -tenants 4 -shards 4 -cpuprofile cmd/paldia-sim/default.pgo
	@echo "refreshed cmd/paldia-sim/default.pgo — commit it to apply everywhere"

# CPU + allocation profiles of the same sharded 10M grid, for pprof work
# (see EXPERIMENTS.md "Profiling the hot path"). Writes profiles/ next to a
# paldia-sim binary built with the committed PGO profile so the flame graph
# matches what ships.
profile:
	mkdir -p profiles
	$(GO) build -o profiles/paldia-sim ./cmd/paldia-sim
	profiles/paldia-sim -stream -requests 10000000 -tenants 4 -shards 4 \
		-cpuprofile profiles/scale.cpu.pprof -memprofile profiles/scale.allocs.pprof
	$(GO) tool pprof -top -nodecount 15 profiles/paldia-sim profiles/scale.cpu.pprof
	$(GO) tool pprof -top -nodecount 15 -sample_index=alloc_space profiles/paldia-sim profiles/scale.allocs.pprof

# Live observability plane end-to-end: serve a short paced replay, scrape
# /metrics, read the SSE feed, assert clean shutdown. curl-based; see the
# script for the exact checks.
live-smoke:
	sh scripts/live_smoke.sh

# Full-scale regeneration of the evaluation (writes results + SVG figures).
experiments:
	$(GO) run ./cmd/paldia-experiments -reps 3 -scale 1 -svg figures | tee results_full.txt

figures:
	$(GO) run ./cmd/paldia-experiments -run fig3,fig6,fig9,fig10 -reps 1 -scale 0.2 -svg figures >/dev/null

fuzz:
	$(GO) test ./internal/trace/ -fuzz FuzzLoad -fuzztime 30s

# Ten seconds of every fuzz target. Go's -fuzz flag must match exactly one
# target per invocation, hence one line per target.
fuzz-smoke:
	$(GO) test ./internal/trace/ -fuzz '^FuzzLoad$$' -fuzztime 10s
	$(GO) test ./internal/trace/ -fuzz '^FuzzWindowCounts$$' -fuzztime 10s
	$(GO) test ./internal/metrics/ -fuzz '^FuzzReadCSV$$' -fuzztime 10s
	$(GO) test ./internal/core/ -fuzz '^FuzzConfigValidate$$' -fuzztime 10s

# The entire registered experiment grid (every figure, table, ablation) with
# the runtime invariant checker attached to every simulation; any law
# violation fails the sweep. See DESIGN.md §6.
test-invariants:
	$(GO) test ./internal/experiments/ -run TestAllExperimentsCleanUnderInvariants -count=1 -v

# The seed-determinism contract — byte-identical Result, per-request CSV,
# spans JSONL and series CSV from identically seeded runs, and byte-identical
# sharded output at any worker count — under the race detector at 1 and 4
# procs.
test-determinism:
	$(GO) test -race -cpu 1,4 -run 'Deterministic' ./internal/core/ ./internal/shard/ ./internal/predict/ -count=1

clean:
	rm -rf figures

# Paldia reproduction — common targets.

GO ?= go

.PHONY: build test vet race bench bench-smoke experiments figures fuzz clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Each simulation is single-goroutine, but the experiment runner fans cells
# out over a worker pool; -race plus the -cpu 1,4 equality run guard the
# collection-by-index determinism contract.
race:
	$(GO) test -race ./...
	$(GO) test -race -cpu 1,4 -run 'SerialParallel|SharedPool' ./internal/experiments/

# Benchstat-comparable benchmark pass (3 counts): one benchmark per paper
# figure/table plus the serial-vs-parallel grid pair. Compare runs with
#   benchstat old.txt BENCH_parallel.txt
# The second step regenerates the machine-readable scheduling hot-path
# numbers (ns/op, B/op, allocs/op, Fig. 3 wall clock) as BENCH_sched.json.
bench:
	$(GO) test -bench=. -benchmem -count=3 -run '^$$' . | tee BENCH_parallel.txt
	$(GO) run ./cmd/paldia-bench -out BENCH_sched.json

# One iteration of every benchmark, as a CI smoke test, plus the allocation
# gate: paldia-bench -gate fails if any Eq. (1) probing or hardware-selection
# path allocates again.
bench-smoke:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' .
	$(GO) run ./cmd/paldia-bench -gate

# Full-scale regeneration of the evaluation (writes results + SVG figures).
experiments:
	$(GO) run ./cmd/paldia-experiments -reps 3 -scale 1 -svg figures | tee results_full.txt

figures:
	$(GO) run ./cmd/paldia-experiments -run fig3,fig6,fig9,fig10 -reps 1 -scale 0.2 -svg figures >/dev/null

fuzz:
	$(GO) test ./internal/trace/ -fuzz FuzzLoad -fuzztime 30s

clean:
	rm -rf figures

# Paldia reproduction — common targets.

GO ?= go

.PHONY: build test vet race bench experiments figures fuzz clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# The simulator is single-goroutine by design; -race guards the few places
# that could grow concurrency (exporters, CLI plumbing).
race:
	$(GO) test -race ./...

# One benchmark per paper figure/table (+ ablations), reduced scale.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' .

# Full-scale regeneration of the evaluation (writes results + SVG figures).
experiments:
	$(GO) run ./cmd/paldia-experiments -reps 3 -scale 1 -svg figures | tee results_full.txt

figures:
	$(GO) run ./cmd/paldia-experiments -run fig3,fig6,fig9,fig10 -reps 1 -scale 0.2 -svg figures >/dev/null

fuzz:
	$(GO) test ./internal/trace/ -fuzz FuzzLoad -fuzztime 30s

clean:
	rm -rf figures

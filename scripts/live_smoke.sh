#!/usr/bin/env sh
# Live-plane smoke test: start paldia-sim -serve on a short paced replay,
# scrape /metrics mid-run, read at least one SSE event from /events, and
# assert the process exits cleanly on its own. Needs only curl + a Go
# toolchain; used by the CI live-smoke job and `make live-smoke`.
set -eu

PORT="${LIVE_SMOKE_PORT:-18080}"
ADDR="127.0.0.1:$PORT"
BIN="$(mktemp -d)/paldia-sim"
OUT="$(mktemp)"
trap 'kill "$SIM_PID" 2>/dev/null || true; rm -f "$OUT"' EXIT

go build -o "$BIN" ./cmd/paldia-sim

# 2m of trace (+30s drain) at speedup 30 is ~5s of wall time: long enough to
# scrape mid-run, short enough for CI. -linger holds the server up briefly
# after the replay so late scrapes still land.
"$BIN" -serve "$ADDR" -speedup 30 -duration 2m -peak 100 -progress 1s -linger 5s >"$OUT" 2>&1 &
SIM_PID=$!

# Wait for the server to come up.
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "live-smoke: server never came up" >&2
    cat "$OUT" >&2
    exit 1
  fi
  sleep 0.2
done
echo "live-smoke: server up on $ADDR"

# Scrape /metrics and check for the families the operator story leans on.
SCRAPE="$(curl -sf "http://$ADDR/metrics")"
for family in paldia_virtual_time_seconds paldia_replay_speedup \
  paldia_requests_arrived_total paldia_slo_burn_rate paldia_slo_compliance; do
  if ! printf '%s\n' "$SCRAPE" | grep -q "^$family"; then
    echo "live-smoke: /metrics is missing $family" >&2
    printf '%s\n' "$SCRAPE" | head -40 >&2
    exit 1
  fi
done
echo "live-smoke: /metrics exposes the expected families"

# /state must be JSON with the virtual clock running.
curl -sf "http://$ADDR/state" | grep -q '"virtual_time_ns"' ||
  { echo "live-smoke: /state has no virtual clock" >&2; exit 1; }

# The dashboard must serve.
curl -sf "http://$ADDR/" | grep -q "paldia live replay" ||
  { echo "live-smoke: dashboard did not render" >&2; exit 1; }

# Read the SSE feed: at least the hello event must arrive within 5s (during
# a live replay we'll also see span/gauge events).
SSE="$(curl -sN --max-time 5 "http://$ADDR/events" | head -c 4096 || true)"
printf '%s\n' "$SSE" | grep -q "^event: hello" ||
  { echo "live-smoke: no hello event on /events" >&2; printf '%s\n' "$SSE" >&2; exit 1; }
EVENTS="$(printf '%s\n' "$SSE" | grep -c '^event: ')"
echo "live-smoke: read $EVENTS SSE events"

# The process must finish on its own (replay + linger ≈ 10s; allow 60).
i=0
while kill -0 "$SIM_PID" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 120 ]; then
    echo "live-smoke: simulator did not exit" >&2
    cat "$OUT" >&2
    exit 1
  fi
  sleep 0.5
done
wait "$SIM_PID" 2>/dev/null || { echo "live-smoke: simulator exited non-zero" >&2; cat "$OUT" >&2; exit 1; }
trap 'rm -f "$OUT"' EXIT

grep -q "SLO compliance" "$OUT" ||
  { echo "live-smoke: no result panel in output" >&2; cat "$OUT" >&2; exit 1; }
grep -q "progress: " "$OUT" ||
  { echo "live-smoke: no progress lines in output" >&2; cat "$OUT" >&2; exit 1; }
echo "live-smoke: clean shutdown with result panel and progress lines"

# Sharded dimension: the same live replay over a 2-tenant grid on 2 workers.
# The plane must serve, progress must carry the per-shard virtual-time lag,
# and — the non-perturbation contract — stdout must be byte-identical to the
# same grid run offline (no -serve, no -progress).
OUT2="$(mktemp)"
ERR2="$(mktemp)"
OFF="$(mktemp)"
trap 'kill "$SIM_PID" 2>/dev/null || true; rm -f "$OUT" "$OUT2" "$ERR2" "$OFF"' EXIT
"$BIN" -serve "$ADDR" -speedup 30 -duration 2m -peak 100 -tenants 2 -shards 2 \
  -progress 1s -linger 2s >"$OUT2" 2>"$ERR2" &
SIM_PID=$!
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "live-smoke: sharded server never came up" >&2
    cat "$OUT2" "$ERR2" >&2
    exit 1
  fi
  sleep 0.2
done
curl -sf "http://$ADDR/metrics" | grep -q "^paldia_virtual_time_seconds" ||
  { echo "live-smoke: sharded /metrics missing virtual time" >&2; exit 1; }
i=0
while kill -0 "$SIM_PID" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 120 ]; then
    echo "live-smoke: sharded simulator did not exit" >&2
    cat "$OUT2" "$ERR2" >&2
    exit 1
  fi
  sleep 0.5
done
wait "$SIM_PID" 2>/dev/null || { echo "live-smoke: sharded simulator exited non-zero" >&2; cat "$OUT2" "$ERR2" >&2; exit 1; }
trap 'rm -f "$OUT" "$OUT2" "$ERR2" "$OFF"' EXIT
grep -q "shard-lag=" "$ERR2" ||
  { echo "live-smoke: sharded progress has no shard-lag field" >&2; cat "$ERR2" >&2; exit 1; }
"$BIN" -stream -duration 2m -peak 100 -tenants 2 -shards 2 >"$OFF" 2>/dev/null
if ! cmp -s "$OUT2" "$OFF"; then
  echo "live-smoke: sharded -serve perturbed the simulation output" >&2
  diff "$OFF" "$OUT2" >&2 || true
  exit 1
fi
echo "live-smoke: sharded replay clean, shard-lag reported, output unperturbed"

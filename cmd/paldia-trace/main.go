// Command paldia-trace generates and inspects the synthetic request traces
// used across the experiments: arrival statistics, a coarse rate curve, and
// optionally the raw arrival offsets.
//
//	paldia-trace -trace azure -peak 450
//	paldia-trace -trace twitter -mean 92 -curve 10s
//	paldia-trace -trace wikipedia -peak 170 -dump | head
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/plot"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		name     = flag.String("trace", "azure", "azure, wikipedia, twitter, poisson, stable")
		peak     = flag.Float64("peak", 450, "peak rps (azure, wikipedia, poisson)")
		mean     = flag.Float64("mean", 92, "mean rps (twitter, stable)")
		duration = flag.Duration("duration", 0, "duration (0 = trace default)")
		seed     = flag.Uint64("seed", 42, "random seed")
		curve    = flag.Duration("curve", 30*time.Second, "rate-curve bucket (0 disables)")
		dump     = flag.Bool("dump", false, "print raw arrival offsets, one per line")
	)
	flag.Parse()

	rng := sim.NewRNG(*seed)
	var tr *trace.Trace
	switch *name {
	case "azure":
		d := *duration
		if d == 0 {
			d = trace.AzureDuration
		}
		tr = trace.Azure(rng, *peak, d)
	case "wikipedia":
		tr = trace.Wikipedia(rng, *peak, 5, trace.WikipediaCompression)
	case "twitter":
		d := *duration
		if d == 0 {
			d = trace.TwitterDuration
		}
		tr = trace.Twitter(rng, *mean, d)
	case "poisson":
		d := *duration
		if d == 0 {
			d = 10 * time.Minute
		}
		tr = trace.Poisson(rng, *peak, d)
	case "stable":
		d := *duration
		if d == 0 {
			d = 10 * time.Minute
		}
		tr = trace.Stable(rng, *mean, d)
	default:
		fmt.Fprintf(os.Stderr, "unknown trace %q\n", *name)
		os.Exit(1)
	}

	if *dump {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, a := range tr.Arrivals {
			fmt.Fprintf(w, "%.6f\n", a.Seconds())
		}
		return
	}

	fmt.Printf("trace     %s\n", tr.Name)
	fmt.Printf("duration  %v\n", tr.Duration)
	fmt.Printf("requests  %d\n", tr.Count())
	fmt.Printf("mean      %.1f rps\n", tr.MeanRPS())
	fmt.Printf("peak (1s) %.1f rps\n", tr.PeakRPS(time.Second))
	fmt.Printf("peak:mean %.1f\n", tr.PeakRPS(time.Second)/tr.MeanRPS())
	fmt.Printf("rate CV   %.2f (10s windows)\n", tr.RateCV(10*time.Second))
	fmt.Printf("shape     %s\n", plot.Sparkline(tr.RateCurve(tr.Duration/60)))
	bursts := tr.Bursts(time.Second, 0.5)
	fmt.Printf("bursts    %d above half-peak, carrying %.0f%% of requests\n",
		len(bursts), tr.BurstLoadShare(time.Second, 0.5)*100)
	for i, b := range bursts {
		if i >= 10 {
			fmt.Printf("          ... and %d more\n", len(bursts)-10)
			break
		}
		fmt.Printf("          burst %d: t=%v, %v long, peak %.0f rps, %d requests\n",
			i+1, b.Start, b.Duration, b.PeakRPS, b.Requests)
	}

	if *curve > 0 {
		fmt.Printf("\nrate curve (%v buckets):\n", *curve)
		rates := tr.RateCurve(*curve)
		maxr := 0.0
		for _, r := range rates {
			if r > maxr {
				maxr = r
			}
		}
		for i, r := range rates {
			bar := ""
			if maxr > 0 {
				bar = strings.Repeat("#", int(r/maxr*60))
			}
			fmt.Printf("%8v %7.1f %s\n", time.Duration(i)*(*curve), r, bar)
		}
	}
}

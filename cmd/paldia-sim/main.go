// Command paldia-sim runs one serving simulation — a scheme serving a model
// under a trace on the simulated heterogeneous cluster — and prints the full
// metric panel (SLO compliance, latency percentiles, tail breakdown, cost,
// power, utilization, cold starts).
//
// Examples:
//
//	paldia-sim -model "ResNet 50" -scheme paldia
//	paldia-sim -model "VGG 19" -scheme molecule-cost -trace azure -duration 5m
//	paldia-sim -model BERT -scheme all -trace azure -peak 8
//	paldia-sim -model "ResNet 50" -trace wikipedia -forecaster seasonal
//
// Streaming mode (-stream) realizes arrivals lazily from the rate curve and
// aggregates metrics in constant memory, so multi-million-request runs never
// materialize a trace or a per-request record slice:
//
//	paldia-sim -stream -requests 1000000 -max-heap-mib 256
//
// Live mode (-serve) replays the run against the wall clock and serves the
// observability plane while it happens — an embedded dashboard at /, a
// Prometheus text scrape at /metrics, a JSON snapshot at /state and an SSE
// telemetry feed at /events; -speedup paces virtual against wall time,
// -linger keeps serving after the replay, and -progress prints one-line
// reports from the same thread-safe snapshots. -fail-every/-fail-for inject
// periodic node outages and -objective tightens the burn-rate error budget:
//
//	paldia-sim -serve :8080 -speedup 60 -progress 2s
//	paldia-sim -serve :8080 -speedup 60 -fail-every 40s -fail-for 10s -objective 0.999
//
// Telemetry (single-scheme runs): -trace-out writes a Chrome trace_event
// timeline (chrome://tracing, Perfetto) plus a derived series CSV;
// -spans-out / -events-out / -series-out / -timeline-svg export the other
// views; -sample sets the gauge sampling cadence.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	var (
		modelName = flag.String("model", "ResNet 50", "workload model name (see -list)")
		schemeArg = flag.String("scheme", "paldia", "scheme: paldia, oracle, infless-cost, infless-perf, molecule-cost, molecule-perf, or all")
		traceName = flag.String("trace", "azure", "trace: azure, wikipedia, twitter, poisson, stable, or file:PATH (paldia-trace -dump format)")
		peak      = flag.Float64("peak", 0, "peak rps (0 = paper default for the model)")
		duration  = flag.Duration("duration", 0, "trace duration (0 = trace default)")
		seed      = flag.Uint64("seed", 42, "random seed")
		slo       = flag.Duration("slo", core.DefaultSLO, "per-request SLO")
		forecast  = flag.String("forecaster", "", "rate forecaster: "+strings.Join(predict.Names(), ", ")+" (empty = ewma; ignored by clairvoyant schemes)")
		list      = flag.Bool("list", false, "list models and exit")
		timeline  = flag.Bool("timeline", false, "print per-30s violation counts")
		csvPath   = flag.String("csv", "", "write per-request records to this CSV file (single-scheme runs)")
		jobs      = flag.Int("j", 1, "concurrent scheme simulations (useful with -scheme all); output is identical at any -j")

		stream     = flag.Bool("stream", false, "realize arrivals lazily from the rate curve with constant-memory metrics (no per-request records)")
		requests   = flag.Int("requests", 0, "with -stream: size the trace so ~N requests arrive in expectation (overrides -duration)")
		maxHeapMiB = flag.Int("max-heap-mib", 0, "fail if sampled heap (runtime HeapAlloc) ever exceeds this many MiB (0 = no limit)")

		tenants = flag.Int("tenants", 1, "partition the workload into this many independent tenant lanes (the logical decomposition; implies -stream when >1)")
		shards  = flag.Int("shards", 1, "worker goroutines executing tenant lanes (0 = all cores); changes wall-clock only, never output")
		check   = flag.Bool("check", false, "run the runtime invariant checker alongside the simulation; fail on any violation")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit")

		failEvery = flag.Duration("fail-every", 0, "inject a node failure on this virtual-time period (0 = none)")
		failFor   = flag.Duration("fail-for", 10*time.Second, "how long each injected node failure lasts")

		cloneK       = flag.Int("clone-k", 0, "dispatch k racing copies of every batch on k distinct GPU pools, cancel-on-first-complete (0 = off; overrides -scheme)")
		cloneSync    = flag.Bool("clone-sync", false, "with -clone-k: synchronized-service cloning — complete only when every copy finishes")
		hedgePct     = flag.Float64("hedge-pct", 0, "launch a backup copy once a request's age crosses this online completion-latency percentile (0 = off; overrides -scheme)")
		spotDiscount = flag.Float64("spot-discount", 0, "bill spot nodes at (1-discount) of the catalog rate (0 = all on-demand)")
		spotFraction = flag.Float64("spot-fraction", 0, "fraction of capacity on revocable spot nodes (plain schemes: any positive value makes the serving node spot)")
		revokeEvery  = flag.Duration("revoke-every", 0, "inject a spot revocation on this virtual-time period (0 = none; needs -spot-discount and -spot-fraction)")
		revokeNotice = flag.Duration("revoke-notice", 2*time.Second, "drain notice between a revocation and its kill")

		serveAddr  = flag.String("serve", "", "serve the live observability plane on this address (e.g. :8080) while replaying; implies -stream")
		speedup    = flag.Float64("speedup", 0, "with -serve: virtual seconds replayed per wall second (0 = as fast as possible)")
		objective  = flag.Float64("objective", 0.99, "with -serve/-progress: SLO-compliance objective whose complement is the burn-rate error budget")
		linger     = flag.Duration("linger", 0, "with -serve: keep serving this long after the replay finishes")
		progressIv = flag.Duration("progress", 0, "print a one-line progress report on this wall-clock cadence; implies -stream")

		traceOut    = flag.String("trace-out", "", "write a Chrome trace_event JSON timeline (also derives a series CSV next to it)")
		spansOut    = flag.String("spans-out", "", "write per-request spans as JSONL")
		eventsOut   = flag.String("events-out", "", "write every telemetry event as JSONL")
		seriesOut   = flag.String("series-out", "", "write sampled time series as CSV")
		timelineSVG = flag.String("timeline-svg", "", "render the sampled series as an SVG chart")
		sampleEvery = flag.Duration("sample", time.Second, "telemetry gauge sampling cadence (virtual time)")
	)
	flag.Parse()

	if *list {
		for _, m := range model.Catalog() {
			fmt.Printf("%-20s %-9s maxBatch=%-4d peak=%.0frps\n",
				m.Name, m.Domain, m.MaxBatch, m.DefaultPeakRPS())
		}
		return
	}

	m, ok := model.ByName(*modelName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown model %q (try -list)\n", *modelName)
		os.Exit(1)
	}
	if _, err := predict.NewByName(*forecast, time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	red := redFlags{
		cloneK: *cloneK, cloneSync: *cloneSync, hedgePct: *hedgePct,
		spotDiscount: *spotDiscount, spotFraction: *spotFraction,
		revokeEvery: *revokeEvery, revokeNotice: *revokeNotice,
	}
	if err := red.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	if *peak == 0 {
		*peak = m.DefaultPeakRPS()
	}

	heap := watchHeap(*maxHeapMiB)
	stopProfiles := startProfiles(*cpuprofile, *memprofile)
	defer stopProfiles()

	// The live plane, the progress line and the tenant grid all ride the
	// streaming path: that is where the shared Online aggregator and the
	// arrival stream live.
	if *serveAddr != "" || *progressIv > 0 || *tenants > 1 {
		*stream = true
	}
	if *tenants < 1 {
		fmt.Fprintln(os.Stderr, "-tenants must be at least 1")
		os.Exit(1)
	}

	if *stream {
		if *csvPath != "" || *timeline || *traceOut != "" {
			fmt.Fprintln(os.Stderr, "-stream keeps no per-request records; -csv, -timeline and -trace-out need a materialized run")
			os.Exit(1)
		}
		runStream(streamRun{
			model: m, trace: *traceName, peak: *peak, dur: *duration,
			requests: *requests, seed: *seed, slo: *slo, schemeArg: *schemeArg,
			forecaster: *forecast,
			jobs:       *jobs, spansOut: *spansOut, eventsOut: *eventsOut,
			seriesOut: *seriesOut, svgOut: *timelineSVG, sample: *sampleEvery,
			serve: *serveAddr, speedup: *speedup, linger: *linger,
			progress: *progressIv, objective: *objective,
			failEvery: *failEvery, failFor: *failFor, red: red,
			tenants: *tenants, shards: *shards, check: *check,
		})
		heap.report()
		return
	}

	rng := sim.NewRNG(*seed)
	tr := buildTrace(rng, *traceName, *peak, *duration)
	fmt.Printf("trace %s: %d requests, mean %.1f rps, peak %.0f rps (1s windows)\n\n",
		tr.Name, tr.Count(), tr.MeanRPS(), tr.PeakRPS(time.Second))

	telemetryOn := *traceOut != "" || *spansOut != "" || *eventsOut != "" ||
		*seriesOut != "" || *timelineSVG != ""
	schemes := red.schemes(pickSchemes(*schemeArg))
	if telemetryOn && len(schemes) > 1 {
		fmt.Fprintln(os.Stderr, "telemetry flags (-trace-out, -spans-out, ...) require a single scheme, not -scheme all")
		os.Exit(1)
	}

	// Every scheme is an independent simulation; -j fans them out over a
	// shared pool. Results are collected by index and printed in scheme
	// order, so the output is byte-identical at any parallelism.
	var pool *experiments.Pool
	if *jobs > 1 {
		pool = experiments.NewPool(*jobs)
	}
	results := make([]core.Result, len(schemes))
	recs := make([]*telemetry.Recorder, len(schemes))
	checks := make([]*invariant.Checker, len(schemes))
	pool.Map(len(schemes), func(i int) {
		cfg := core.Config{
			Model:           m,
			Trace:           tr,
			Scheme:          schemes[i],
			SLO:             *slo,
			Seed:            *seed,
			Forecaster:      *forecast,
			FailureEvery:    *failEvery,
			FailureDuration: *failFor,
		}
		red.apply(&cfg)
		if telemetryOn {
			recs[i] = telemetry.NewRecorder()
			cfg.Telemetry = recs[i]
			cfg.SampleEvery = *sampleEvery
		}
		if *check {
			checks[i] = invariant.New()
			cfg.Invariants = checks[i]
		}
		results[i] = core.Run(cfg)
	})
	reportInvariants(checks)

	for i, res := range results {
		printResult(res)
		if *timeline {
			printTimeline(res, tr.Duration)
		}
		if *csvPath != "" {
			if err := writeCSV(*csvPath, res); err != nil {
				fmt.Fprintf(os.Stderr, "csv: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", res.Requests, *csvPath)
		}
		if rec := recs[i]; rec != nil {
			if err := writeTelemetry(rec, *traceOut, *spansOut, *eventsOut, *seriesOut, *timelineSVG); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
				os.Exit(1)
			}
		}
	}
	heap.report()
}

// streamRun carries the flag values the streaming path needs.
type streamRun struct {
	model      model.Spec
	trace      string
	peak       float64
	dur        time.Duration
	requests   int
	seed       uint64
	slo        time.Duration
	schemeArg  string
	forecaster string
	jobs       int
	spansOut   string
	eventsOut  string
	seriesOut  string
	svgOut     string
	sample     time.Duration
	serve      string
	speedup    float64
	linger     time.Duration
	progress   time.Duration
	objective  float64
	failEvery  time.Duration
	failFor    time.Duration
	red        redFlags
	tenants    int
	shards     int
	check      bool
}

// redFlags carries the redundant-dispatch and spot-capacity flags.
type redFlags struct {
	cloneK       int
	cloneSync    bool
	hedgePct     float64
	spotDiscount float64
	spotFraction float64
	revokeEvery  time.Duration
	revokeNotice time.Duration
}

func (rf redFlags) validate() error {
	if rf.cloneK != 0 && (rf.cloneK < 2 || rf.cloneK > 3) {
		return fmt.Errorf("-clone-k must be 0, 2 or 3 (got %d)", rf.cloneK)
	}
	if rf.cloneK != 0 && rf.hedgePct != 0 {
		return fmt.Errorf("-clone-k and -hedge-pct are mutually exclusive")
	}
	if rf.hedgePct != 0 && !(rf.hedgePct > 0 && rf.hedgePct <= 100) {
		return fmt.Errorf("-hedge-pct must be in (0,100] (got %v)", rf.hedgePct)
	}
	if rf.revokeEvery > 0 && (rf.spotDiscount <= 0 || rf.spotFraction <= 0) {
		return fmt.Errorf("-revoke-every needs spot nodes: set -spot-discount and -spot-fraction")
	}
	return nil
}

// schemes replaces the -scheme selection with the redundant variant when
// -clone-k or -hedge-pct is set.
func (rf redFlags) schemes(base []core.Scheme) []core.Scheme {
	switch {
	case rf.cloneK != 0:
		return []core.Scheme{core.NewPaldiaCloneK(rf.cloneK, rf.cloneSync)}
	case rf.hedgePct != 0:
		return []core.Scheme{core.NewPaldiaHedged(rf.hedgePct)}
	}
	return base
}

// apply sets the spot-capacity knobs on one run config.
func (rf redFlags) apply(cfg *core.Config) {
	cfg.SpotDiscount = rf.spotDiscount
	cfg.SpotFraction = rf.spotFraction
	cfg.RevokeEvery = rf.revokeEvery
	cfg.RevokeNotice = rf.revokeNotice
}

// runStream is the constant-memory serving path: arrivals come one at a time
// from the rate curve (core.Config.Stream) and metrics aggregate online
// (core.MetricsOnline), so memory is independent of request count. Telemetry,
// when requested, goes through the flush-as-you-go StreamWriter instead of
// the buffering Recorder.
func runStream(o streamRun) {
	if o.tenants > 1 {
		runStreamGrid(o)
		return
	}
	rng := sim.NewRNG(o.seed)
	c := buildCurve(rng, o.trace, o.peak, o.dur, o.requests)
	fmt.Printf("curve %s: ~%.0f requests expected, mean %.1f rps, peak %.0f rps, %v\n\n",
		c.Name, c.ExpectedRequests(), c.MeanRPS(), c.PeakRPS(), c.Duration())

	schemes := o.red.schemes(pickSchemes(o.schemeArg))
	for _, s := range schemes {
		if s.Clairvoyant {
			fmt.Fprintf(os.Stderr, "scheme %s is clairvoyant and needs a materialized trace; drop -stream\n", s.Name())
			os.Exit(1)
		}
	}
	telemetryOn := o.spansOut != "" || o.eventsOut != "" || o.seriesOut != "" || o.svgOut != ""
	if telemetryOn && len(schemes) > 1 {
		fmt.Fprintln(os.Stderr, "telemetry flags (-spans-out, ...) require a single scheme, not -scheme all")
		os.Exit(1)
	}
	live := o.serve != "" || o.progress > 0
	if live && len(schemes) > 1 {
		fmt.Fprintln(os.Stderr, "-serve and -progress attach to a single run, not -scheme all")
		os.Exit(1)
	}

	var sw *telemetry.StreamWriter
	var files []*os.File
	if telemetryOn {
		open := func(path string) io.Writer {
			if path == "" {
				return nil
			}
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
				os.Exit(1)
			}
			files = append(files, f)
			return f
		}
		spansW, eventsW := open(o.spansOut), open(o.eventsOut)
		if spansW == nil {
			spansW = io.Discard
		}
		sw = telemetry.NewStreamWriter(spansW, eventsW)
	}

	// The live observability plane attaches through three read-only seams
	// (sink, pacer, shared aggregator), so the run's outputs are identical
	// with or without it; the HTTP server reads mid-run snapshots only.
	var (
		plane  *obs.Plane
		online *metrics.Online
		srv    *http.Server
	)
	if live {
		online = metrics.NewOnline(o.slo, c.Duration(), metrics.DefaultGoodputWindow)
		plane = obs.NewPlane(obs.Options{
			SLO: o.slo, Objective: o.objective, Online: online, Speedup: o.speedup,
		})
		if o.serve != "" {
			ln, err := net.Listen("tcp", o.serve)
			if err != nil {
				fmt.Fprintf(os.Stderr, "serve: %v\n", err)
				os.Exit(1)
			}
			srv = obs.NewServer(o.serve, plane)
			go func() {
				if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
					fmt.Fprintf(os.Stderr, "serve: %v\n", err)
				}
			}()
			fmt.Fprintf(os.Stderr, "live plane on http://%s  (/ dashboard, /metrics, /state, /events)\n", ln.Addr())
		}
	}

	// Curve streams are reproducible: every c.Stream(rng) replays the same
	// seeded realization, so each scheme serves the identical arrival
	// sequence and -j parallelism changes nothing.
	streams := make([]trace.Stream, len(schemes))
	for i := range schemes {
		streams[i] = c.Stream(rng)
	}
	var pool *experiments.Pool
	if o.jobs > 1 {
		pool = experiments.NewPool(o.jobs)
	}
	results := make([]core.Result, len(schemes))
	checks := make([]*invariant.Checker, len(schemes))
	runOne := func(i int) {
		cfg := core.Config{
			Model:           o.model,
			Stream:          streams[i],
			Scheme:          schemes[i],
			SLO:             o.slo,
			Seed:            o.seed,
			Forecaster:      o.forecaster,
			Metrics:         core.MetricsOnline,
			FailureEvery:    o.failEvery,
			FailureDuration: o.failFor,
		}
		o.red.apply(&cfg)
		if sw != nil {
			cfg.Telemetry = sw
			cfg.SampleEvery = o.sample
		}
		if plane != nil { // live => single scheme
			cfg.Telemetry = telemetry.Combine(cfg.Telemetry, plane.Sink())
			cfg.Pacer = plane.Pacer()
			cfg.Aggregator = online
			cfg.SampleEvery = o.sample
		}
		if o.check {
			checks[i] = invariant.New()
			cfg.Invariants = checks[i]
		}
		results[i] = core.Run(cfg)
	}
	stopProgress := startProgress(o.progress, online, plane, nil)
	pool.Map(len(schemes), runOne)
	stopProgress()
	reportInvariants(checks)
	if plane != nil {
		plane.MarkDone()
		if o.linger > 0 {
			fmt.Fprintf(os.Stderr, "replay done; serving for another %v\n", o.linger)
			time.Sleep(o.linger)
		}
	}
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
		cancel()
	}
	for _, res := range results {
		printResult(res)
	}

	if sw != nil {
		if err := sw.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			os.Exit(1)
		}
		if o.spansOut != "" {
			fmt.Fprintf(os.Stderr, "wrote %d spans to %s (peak %d in flight)\n",
				sw.SpansWritten(), o.spansOut, sw.PeakInFlight())
		}
		if o.eventsOut != "" {
			fmt.Fprintf(os.Stderr, "wrote events to %s\n", o.eventsOut)
		}
		writeSet := func(path, what string, fn func(f *os.File) error) {
			if path == "" {
				return
			}
			f, err := os.Create(path)
			if err == nil {
				if err = fn(f); err == nil {
					err = f.Close()
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s to %s\n", what, path)
		}
		writeSet(o.seriesOut, "series", func(f *os.File) error { return sw.Series().WriteCSV(f) })
		writeSet(o.svgOut, "series timeline SVG", func(f *os.File) error {
			return sw.Series().TimelineSVG(f, "sampled runtime series")
		})
		for _, f := range files {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// runStreamGrid is the sharded multi-tenant path: the rate curve is
// partitioned into `-tenants` independent lanes (a workload decision fixed
// before any execution), each lane runs as its own constant-memory streaming
// simulation, and `-shards` worker goroutines execute them under the
// conservative virtual-time barrier. Worker count changes wall-clock only:
// per-lane trajectories, the merged telemetry and the aggregate panel are
// byte-identical at any -shards.
func runStreamGrid(o streamRun) {
	rng := sim.NewRNG(o.seed)
	c := buildCurve(rng, o.trace, o.peak, o.dur, o.requests)
	workers := o.shards
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > o.tenants {
		workers = o.tenants
	}
	fmt.Printf("curve %s: ~%.0f requests expected, mean %.1f rps, peak %.0f rps, %v\n",
		c.Name, c.ExpectedRequests(), c.MeanRPS(), c.PeakRPS(), c.Duration())
	// The lane decomposition is part of the workload, so it prints to
	// stdout; the worker count is an execution detail that must not vary
	// the output, so it goes to stderr.
	fmt.Printf("grid: %d tenant lanes at 1/%d rate each\n\n", o.tenants, o.tenants)
	fmt.Fprintf(os.Stderr, "executing %d lanes on %d workers, lookahead %v\n",
		o.tenants, workers, shard.DefaultLookahead())

	gridSchemes := o.red.schemes(pickSchemes(o.schemeArg))
	if len(gridSchemes) > 1 {
		fmt.Fprintln(os.Stderr, "-tenants runs a single scheme per grid, not -scheme all")
		os.Exit(1)
	}
	if gridSchemes[0].Clairvoyant {
		fmt.Fprintf(os.Stderr, "clairvoyant schemes need a materialized trace; drop -stream/-tenants\n")
		os.Exit(1)
	}

	telemetryOn := o.spansOut != "" || o.eventsOut != "" || o.seriesOut != "" || o.svgOut != ""
	live := o.serve != "" || o.progress > 0

	var files []*os.File
	open := func(path string) io.Writer {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			os.Exit(1)
		}
		files = append(files, f)
		return f
	}
	var mw *telemetry.MergeWriter
	if telemetryOn {
		spansW, eventsW := open(o.spansOut), open(o.eventsOut)
		if spansW == nil {
			spansW = io.Discard
		}
		mw = telemetry.NewMergeWriter(spansW, eventsW, o.tenants)
	}

	// The live plane attaches exactly as in the single-lane path — sink,
	// pacer, shared aggregator — all concurrency-safe and read-only toward
	// the simulation, so a sharded -serve perturbs nothing. Lane feeds into
	// the hub carry the lane index as Tenant so spans don't collide.
	var (
		plane  *obs.Plane
		online *metrics.Online
		srv    *http.Server
	)
	if live {
		online = metrics.NewOnline(o.slo, c.Duration(), metrics.DefaultGoodputWindow)
		plane = obs.NewPlane(obs.Options{
			SLO: o.slo, Objective: o.objective, Online: online, Speedup: o.speedup,
		})
		if o.serve != "" {
			ln, err := net.Listen("tcp", o.serve)
			if err != nil {
				fmt.Fprintf(os.Stderr, "serve: %v\n", err)
				os.Exit(1)
			}
			srv = obs.NewServer(o.serve, plane)
			go func() {
				if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
					fmt.Fprintf(os.Stderr, "serve: %v\n", err)
				}
			}()
			fmt.Fprintf(os.Stderr, "live plane on http://%s  (/ dashboard, /metrics, /state, /events)\n", ln.Addr())
		}
	}

	lanes := c.Partition(o.tenants)
	cfgs := make([]core.Config, o.tenants)
	checks := make([]*invariant.Checker, o.tenants)
	for i, lane := range lanes {
		cfg := core.Config{
			Model:           o.model,
			Stream:          lane.Stream(rng),
			Scheme:          gridSchemes[0],
			SLO:             o.slo,
			Seed:            o.seed,
			Forecaster:      o.forecaster,
			Metrics:         core.MetricsOnline,
			FailureEvery:    o.failEvery,
			FailureDuration: o.failFor,
		}
		o.red.apply(&cfg)
		if mw != nil {
			cfg.Telemetry = mw.Lane(i)
			cfg.SampleEvery = o.sample
		}
		if plane != nil {
			// Each lane keeps its own Online (the Result's primary) and
			// mirrors every record into the plane's shared aggregator.
			cfg.Aggregator = metrics.NewTee(
				metrics.NewOnline(o.slo, c.Duration(), metrics.DefaultGoodputWindow), online)
			cfg.Telemetry = telemetry.Combine(cfg.Telemetry, telemetry.WithTenant(plane.Sink(), i))
			cfg.Pacer = plane.Pacer()
			cfg.SampleEvery = o.sample
		}
		if o.check {
			checks[i] = invariant.New()
			cfg.Invariants = checks[i]
		}
		cfgs[i] = cfg
	}

	board := shard.NewVTBoard(o.tenants)
	stopProgress := startProgress(o.progress, online, plane, board)
	results := shard.Run(cfgs, shard.Options{
		Shards: workers, Merge: mw, Board: board,
	})
	stopProgress()
	reportInvariants(checks)
	if plane != nil {
		plane.MarkDone()
		if o.linger > 0 {
			fmt.Fprintf(os.Stderr, "replay done; serving for another %v\n", o.linger)
			time.Sleep(o.linger)
		}
	}
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
		cancel()
	}

	agg := shard.Aggregate(results, o.slo)
	printResult(agg)
	fmt.Println("  per-tenant lanes:")
	for i, r := range results {
		fmt.Printf("    tenant %-3d requests %-8d compliance %6.2f%%  p99 %-10v cost $%.4f\n",
			i, r.Requests, r.SLOCompliance*100, r.P99, r.Cost)
	}
	fmt.Println()

	if mw != nil {
		if err := mw.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			os.Exit(1)
		}
		if o.spansOut != "" {
			fmt.Fprintf(os.Stderr, "wrote %d spans to %s (peak %d queued per lane)\n",
				mw.SpansWritten(), o.spansOut, mw.PeakQueued())
		}
		if o.eventsOut != "" {
			fmt.Fprintf(os.Stderr, "wrote events to %s\n", o.eventsOut)
		}
		writeSet := func(path, what string, fn func(f *os.File) error) {
			if path == "" {
				return
			}
			f, err := os.Create(path)
			if err == nil {
				if err = fn(f); err == nil {
					err = f.Close()
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s to %s\n", what, path)
		}
		writeSet(o.seriesOut, "series", func(f *os.File) error { return mw.Series().WriteCSV(f) })
		writeSet(o.svgOut, "series timeline SVG", func(f *os.File) error {
			return mw.Series().TimelineSVG(f, "sampled runtime series")
		})
		for _, f := range files {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// reportInvariants prints any -check violations and exits non-zero; nil
// entries (checking disabled) are skipped.
func reportInvariants(checks []*invariant.Checker) {
	bad := false
	for i, chk := range checks {
		if chk == nil {
			continue
		}
		if err := chk.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "invariants (run %d):\n%v\n", i, err)
			bad = true
		}
	}
	if bad {
		os.Exit(3)
	}
}

// startProfiles starts a CPU profile and arranges for an allocation profile
// at exit; either path may be empty. The returned stop function finishes
// both.
func startProfiles(cpuPath, memPath string) func() {
	var cpuF *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "wrote cpu profile to %s\n", cpuPath)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC() // flush recent allocations into the profile
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "wrote allocation profile to %s\n", memPath)
		}
	}
}

// buildCurve builds the unrealized rate curve for -stream. With nReq > 0 the
// duration is sized so ~nReq requests arrive in expectation (a first pass at
// the default duration estimates the curve's mean rate).
func buildCurve(rng *sim.RNG, name string, peak float64, dur time.Duration, nReq int) *trace.Curve {
	mk := func(d time.Duration) *trace.Curve {
		switch name {
		case "azure":
			if d == 0 {
				d = trace.AzureDuration
			}
			return trace.AzureCurve(rng, peak, d)
		case "twitter":
			if d == 0 {
				d = trace.TwitterDuration
			}
			return trace.TwitterCurve(rng, peak/5, d)
		case "poisson":
			if d == 0 {
				d = 10 * time.Minute
			}
			return trace.PoissonCurve(rng, peak, d)
		case "stable":
			if d == 0 {
				d = 10 * time.Minute
			}
			return trace.StableCurve(rng, peak, d)
		default:
			fmt.Fprintf(os.Stderr, "trace %q cannot stream; -stream supports azure, twitter, poisson, stable\n", name)
			os.Exit(1)
			return nil
		}
	}
	c := mk(dur)
	// The curve's mean rate is itself a function of duration (surge count and
	// shape are realized per bucket), so sizing for a request count is a fixed
	// point: re-derive the duration from the latest realized mean until it
	// settles. A few rounds land within a couple percent of nReq.
	for i := 0; nReq > 0 && i < 4; i++ {
		d := trace.DurationForRequests(nReq, c.MeanRPS())
		if d == c.Duration() {
			break
		}
		c = mk(d)
	}
	return c
}

// heapWatch samples runtime.MemStats in the background. If HeapAlloc ever
// exceeds the limit the process fails immediately — the scale-smoke CI
// contract — and the observed peak is reported at exit either way.
type heapWatch struct {
	limit uint64
	peak  atomic.Uint64
	stop  chan struct{}
}

// startProgress prints a one-line report to stderr on a wall-clock cadence,
// reading only thread-safe snapshots (metrics.Online.Snapshot, the replay
// driver, and the shard board's atomics), so the run itself is untouched.
// With a board (sharded grids) the line also reports the slowest lane's
// virtual time and the fastest-to-slowest lag — bounded by the lookahead
// while the barrier loop runs. The returned function stops the reporter and
// waits for it to exit. A non-positive cadence is a no-op.
func startProgress(every time.Duration, online *metrics.Online, plane *obs.Plane, board *shard.VTBoard) func() {
	if every <= 0 || online == nil {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s := online.Snapshot()
				runtime.ReadMemStats(&ms)
				var vt time.Duration
				if plane != nil {
					vt = plane.Driver().VirtualNow()
				}
				lag := ""
				if board != nil {
					lo, hi := board.Bounds()
					lag = fmt.Sprintf(" vt-slowest=%v shard-lag=%v",
						lo.Round(time.Second), (hi - lo).Round(time.Millisecond))
				}
				fmt.Fprintf(os.Stderr,
					"progress: vt=%v requests=%d compliance=%.2f%% p99=%v heap=%dMiB%s\n",
					vt.Round(time.Second), s.Count, 100*s.Compliance,
					s.P99.Round(time.Millisecond), ms.HeapAlloc>>20, lag)
			}
		}
	}()
	return func() { close(stop); <-done }
}

func watchHeap(limitMiB int) *heapWatch {
	if limitMiB <= 0 {
		return nil
	}
	w := &heapWatch{limit: uint64(limitMiB) << 20, stop: make(chan struct{})}
	// Pace the GC against the ceiling rather than GOGC's 2x-live default:
	// without this the watcher trips on floating garbage whenever live state
	// passes half the limit, even though the live set fits comfortably. If
	// live state genuinely exceeds the limit the GC cannot hold HeapAlloc
	// under it and the watcher still fires.
	debug.SetMemoryLimit(int64(w.limit))
	go func() {
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > w.peak.Load() {
					w.peak.Store(ms.HeapAlloc)
				}
				if ms.HeapAlloc > w.limit {
					fmt.Fprintf(os.Stderr, "heap %d MiB exceeded -max-heap-mib %d\n",
						ms.HeapAlloc>>20, w.limit>>20)
					os.Exit(2)
				}
			}
		}
	}()
	return w
}

// report stops the watcher, folds in one final reading (a spike between the
// last tick and exit must not escape the ceiling), and prints the peak; nil
// receivers (no limit set) do nothing, so the call sites stay unconditional.
func (w *heapWatch) report() {
	if w == nil {
		return
	}
	close(w.stop)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > w.peak.Load() {
		w.peak.Store(ms.HeapAlloc)
	}
	fmt.Fprintf(os.Stderr, "peak heap %d MiB (limit %d MiB)\n", w.peak.Load()>>20, w.limit>>20)
	if w.peak.Load() > w.limit {
		fmt.Fprintf(os.Stderr, "heap exceeded -max-heap-mib %d\n", w.limit>>20)
		os.Exit(2)
	}
}

// writeTelemetry exports the recorder's views to every requested path. A
// -trace-out without -series-out also writes the sampled series next to the
// trace (<name>_series.csv), so one flag yields both timeline artifacts.
func writeTelemetry(rec *telemetry.Recorder, traceOut, spansOut, eventsOut, seriesOut, svgOut string) error {
	write := func(path, what string, fn func(f *os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s to %s\n", what, path)
		return nil
	}
	if seriesOut == "" && traceOut != "" && rec.Series().Len() > 0 {
		seriesOut = strings.TrimSuffix(traceOut, filepath.Ext(traceOut)) + "_series.csv"
	}
	if err := write(traceOut, "Chrome trace", func(f *os.File) error {
		return rec.WriteChromeTrace(f)
	}); err != nil {
		return err
	}
	if err := write(spansOut, fmt.Sprintf("%d spans", len(rec.Spans())), func(f *os.File) error {
		return rec.WriteSpansJSONL(f)
	}); err != nil {
		return err
	}
	if err := write(eventsOut, fmt.Sprintf("%d events", len(rec.Events())), func(f *os.File) error {
		return rec.WriteEventsJSONL(f)
	}); err != nil {
		return err
	}
	if err := write(seriesOut, fmt.Sprintf("%d series", rec.Series().Len()), func(f *os.File) error {
		return rec.Series().WriteCSV(f)
	}); err != nil {
		return err
	}
	return write(svgOut, "series timeline SVG", func(f *os.File) error {
		return rec.Series().TimelineSVG(f, "sampled runtime series")
	})
}

func writeCSV(path string, res core.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return res.Collector.WriteCSV(f)
}

func printTimeline(r core.Result, dur time.Duration) {
	const bucket = 30 * time.Second
	n := int(dur/bucket) + 1
	viol := make([]int, n)
	tot := make([]int, n)
	r.Collector.Each(func(rec metrics.Record) {
		i := int(rec.Arrival / bucket)
		if i >= n {
			i = n - 1
		}
		tot[i]++
		if rec.Failed || rec.Latency > r.Collector.SLO {
			viol[i]++
		}
	})
	fmt.Println("  violations per 30s window (violations/total):")
	for i := range viol {
		if viol[i] > 0 {
			fmt.Printf("    t=%4ds  %6d/%-6d\n", i*30, viol[i], tot[i])
		}
	}
	fmt.Println("  hardware timeline:")
	for i, ev := range r.SwitchHistory {
		end := dur
		if i+1 < len(r.SwitchHistory) {
			end = r.SwitchHistory[i+1].At
		}
		fmt.Printf("    %8v  %-12s (%v)\n", ev.At.Round(time.Second), ev.Spec,
			(end - ev.At).Round(time.Second))
	}
	fmt.Println()
}

func buildTrace(rng *sim.RNG, name string, peak float64, dur time.Duration) *trace.Trace {
	if path, ok := strings.CutPrefix(name, "file:"); ok {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		tr, err := trace.Load(f, path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		return tr
	}
	switch name {
	case "azure":
		if dur == 0 {
			dur = trace.AzureDuration
		}
		return trace.Azure(rng, peak, dur)
	case "wikipedia":
		return trace.Wikipedia(rng, peak, 5, trace.WikipediaCompression)
	case "twitter":
		if dur == 0 {
			dur = trace.TwitterDuration
		}
		return trace.Twitter(rng, peak/5, dur)
	case "poisson":
		if dur == 0 {
			dur = 10 * time.Minute
		}
		return trace.Poisson(rng, peak, dur)
	case "stable":
		if dur == 0 {
			dur = 10 * time.Minute
		}
		return trace.Stable(rng, peak, dur)
	default:
		fmt.Fprintf(os.Stderr, "unknown trace %q\n", name)
		os.Exit(1)
		return nil
	}
}

func pickSchemes(arg string) []core.Scheme {
	switch strings.ToLower(arg) {
	case "paldia":
		return []core.Scheme{core.NewPaldia()}
	case "oracle":
		return []core.Scheme{core.NewOracle()}
	case "infless-cost":
		return []core.Scheme{core.NewINFlessLlamaCost()}
	case "infless-perf":
		return []core.Scheme{core.NewINFlessLlamaPerf()}
	case "molecule-cost":
		return []core.Scheme{core.NewMoleculeCost()}
	case "molecule-perf":
		return []core.Scheme{core.NewMoleculePerf()}
	case "all":
		return append(core.StandardSchemes(), core.NewOracle())
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", arg)
		os.Exit(1)
		return nil
	}
}

func printResult(r core.Result) {
	fmt.Printf("=== %s — %s ===\n", r.Scheme, r.Model)
	fmt.Printf("  requests        %d (failed %d)\n", r.Requests, r.FailedRequests)
	fmt.Printf("  SLO compliance  %.2f%%\n", r.SLOCompliance*100)
	fmt.Printf("  latency         P50 %v   P99 %v   mean %v\n", r.P50, r.P99, r.MeanLatency)
	if r.Collector != nil {
		b := r.Collector.TailBreakdown(99, 99.9)
		fmt.Printf("  P99 breakdown   min %v | batch %v | queue %v | interf %v | cold %v\n",
			b.MinExec, b.BatchWait, b.QueueDelay, b.Interference, b.ColdStart)
	} else if r.Online != nil {
		b := r.Online.MeanBreakdown()
		fmt.Printf("  mean breakdown  min %v | batch %v | queue %v | interf %v | cold %v\n",
			b.MinExec, b.BatchWait, b.QueueDelay, b.Interference, b.ColdStart)
	}
	fmt.Printf("  cost            $%.4f (cpu $%.4f, gpu $%.4f)\n", r.Cost, r.CPUCost, r.GPUCost)
	fmt.Printf("  power           %.0f W avg, %.1f Wh\n", r.AvgPowerW, r.EnergyWh)
	fmt.Printf("  utilization     cpu %.0f%%  gpu %.0f%%\n", r.UtilCPU*100, r.UtilGPU*100)
	fmt.Printf("  containers      boots %d (sync cold %d), hw switches %d\n",
		r.Boots, r.SyncColdStarts, r.Switches)
	names := make([]string, 0, len(r.HeldBySpec))
	for name := range r.HeldBySpec {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("  residency      ")
	for _, name := range names {
		fmt.Printf(" %s:%.0fs", name, r.HeldBySpec[name].Seconds())
	}
	fmt.Printf("\n\n")
}

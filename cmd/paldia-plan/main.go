// Command paldia-plan is a what-if capacity planner built on the profiling
// tables and Eq. (1): for a model, SLO and expected peak rate, it prints
// every node type's predicted worst-case latency, whether it qualifies for
// the capable pool, what the Hardware Selection module would pick, and what
// it would cost per hour — the offline version of Algorithm 1's decision.
//
//	paldia-plan -model "ResNet 50" -rate 450
//	paldia-plan -model BERT -rate 8 -slo 150ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/profile"
)

func main() {
	var (
		modelName = flag.String("model", "ResNet 50", "workload model")
		rate      = flag.Float64("rate", 450, "expected peak request rate (rps)")
		slo       = flag.Duration("slo", 200*time.Millisecond, "latency target")
	)
	flag.Parse()

	m, ok := model.ByName(*modelName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *modelName)
		os.Exit(1)
	}

	pool := profile.CapablePool(m, *rate, *slo)
	inPool := map[string]bool{}
	for _, hw := range pool {
		inPool[hw.Name] = true
	}

	fmt.Printf("plan for %s at %.0f rps, SLO %v\n\n", m.Name, *rate, *slo)
	fmt.Printf("%-12s %-11s %8s %6s %10s %9s %9s\n",
		"node", "device", "$/h", "batch", "T_max", "best y", "capable")

	type cand struct {
		hw   hardware.Spec
		tmax time.Duration
	}
	var cands []cand
	n := int(*rate * slo.Seconds())
	for _, hw := range hardware.Catalog() {
		e := profile.Lookup(m, hw)
		var tmax time.Duration
		bestY := "-"
		if hw.IsGPU() {
			in := perfmodel.Inputs{
				Solo: e.SoloBatch, BatchSize: e.PreferredBatch,
				FBR: e.FBR, ComputeFrac: e.ComputeFrac,
				N: n, SLO: *slo,
			}
			y, tm, _ := perfmodel.BestY(in)
			tmax = tm
			bestY = fmt.Sprint(y)
		} else {
			b := profile.EffectiveBatch(m, hw, *rate, *slo/4)
			tmax = perfmodel.ApproxCPUTMax(profile.Solo(m, hw, b), b, int(*rate*0.025), 0)
		}
		capable := "no"
		if inPool[hw.Name] {
			capable = "yes"
			cands = append(cands, cand{hw, tmax})
		}
		fmt.Printf("%-12s %-11s %8.2f %6d %10v %9s %9s\n",
			hw.Name, hw.Accel, hw.CostPerHour, e.PreferredBatch,
			tmax.Round(time.Millisecond), bestY, capable)
	}

	if len(cands) == 0 {
		fmt.Println("\nno capable node; the selection falls back to the most performant GPU")
		return
	}
	best := cands[0].tmax
	for _, c := range cands[1:] {
		if c.tmax < best {
			best = c.tmax
		}
	}
	for _, c := range cands {
		if c.tmax <= best+50*time.Millisecond {
			fmt.Printf("\nchoose_best_HW: %s (%s) at $%.2f/h — cheapest within 50ms of the best T_max (%v)\n",
				c.hw.Name, c.hw.Accel, c.hw.CostPerHour, best.Round(time.Millisecond))
			return
		}
	}
}

// Command paldia-profile dumps the profiling campaign the Hardware Selection
// module relies on: for every (model, node) pair, the solo batch latency,
// Fractional Bandwidth Requirement, configured batch size, sustained
// throughput, compute occupancy and memory-bounded co-location cap.
//
//	paldia-profile                      # full table
//	paldia-profile -model "ResNet 50"   # one model
//	paldia-profile -hw V100             # one node type
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/profile"
)

func main() {
	var (
		modelName = flag.String("model", "", "restrict to one model")
		hwName    = flag.String("hw", "", "restrict to one node (instance or accelerator name)")
	)
	flag.Parse()

	models := model.Catalog()
	if *modelName != "" {
		m, ok := model.ByName(*modelName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown model %q\n", *modelName)
			os.Exit(1)
		}
		models = []model.Spec{m}
	}
	nodes := hardware.Catalog()
	if *hwName != "" {
		hw, ok := hardware.ByName(*hwName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown hardware %q\n", *hwName)
			os.Exit(1)
		}
		nodes = []hardware.Spec{hw}
	}

	fmt.Printf("%-20s %-12s %6s %10s %7s %8s %9s %7s\n",
		"model", "node", "batch", "solo", "FBR", "thruput", "compute", "max-res")
	for _, m := range models {
		for _, hw := range nodes {
			e := profile.Lookup(m, hw)
			fbr := "-"
			comp := "-"
			if hw.IsGPU() {
				fbr = fmt.Sprintf("%.2f", e.FBR)
				comp = fmt.Sprintf("%.2f", e.ComputeFrac)
			}
			fmt.Printf("%-20s %-12s %6d %10s %7s %7.0f/s %9s %7d\n",
				m.Name, hw.Accel, e.PreferredBatch,
				e.SoloBatch.Round(100000).String(), fbr,
				e.ThroughputRPS, comp, e.MaxResidentJobs)
		}
	}
}

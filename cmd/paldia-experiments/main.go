// Command paldia-experiments regenerates the paper's evaluation: every
// figure and table of Section VI, as text tables (or markdown with -md).
//
//	paldia-experiments                  # run everything at default scale
//	paldia-experiments -run fig3,fig4   # selected experiments
//	paldia-experiments -reps 5 -scale 1 # the paper's repetition count
//	paldia-experiments -scale 0.2       # quick pass (shorter traces)
//	paldia-experiments -j 1             # serial run (results are identical)
//
// With -j > 1 (default: one worker per CPU) every simulation cell — each
// (model, trace, scheme, repetition) point — fans out over a worker pool
// shared across experiments, and whole experiments execute concurrently.
// Results are collected indexed by cell and printed in registry order, so the
// output is byte-identical at every -j value.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/predict"
)

func main() {
	var (
		runArg = flag.String("run", "all", "comma-separated experiment ids, or 'all' ("+
			strings.Join(experiments.IDs(), ", ")+")")
		reps   = flag.Int("reps", 3, "repetitions per data point (paper: 5)")
		scale  = flag.Float64("scale", 1, "trace duration scale (1 = paper scale)")
		seed   = flag.Uint64("seed", 42, "root random seed")
		md     = flag.Bool("md", false, "emit markdown instead of aligned text")
		svgDir = flag.String("svg", "", "also write each experiment's figures as SVG files into this directory")
		csvDir = flag.String("csv", "", "also write each experiment's table as a CSV file into this directory")
		jobs   = flag.Int("j", runtime.NumCPU(), "simulations to run concurrently (1 = serial; output is identical at any value)")
		fc     = flag.String("forecaster", "", "default rate forecaster for every simulation: "+
			strings.Join(predict.Names(), ", ")+" (empty = ewma; forecast-frontier sweeps its own)")
	)
	flag.Parse()

	if _, err := predict.NewByName(*fc, time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	opts := experiments.Options{
		Seed: *seed, Reps: *reps, Scale: *scale, Parallelism: *jobs, Forecaster: *fc,
	}
	if *jobs > 1 {
		// One pool shared by every experiment bounds total concurrency even
		// when experiments themselves run concurrently below.
		opts.Pool = experiments.NewPool(*jobs)
	}
	reg := experiments.Registry()

	var ids []string
	if *runArg == "all" {
		ids = experiments.Order()
	} else {
		for _, id := range strings.Split(*runArg, ",") {
			id = strings.TrimSpace(id)
			if _, ok := reg[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s)\n",
					id, strings.Join(experiments.IDs(), ", "))
				os.Exit(1)
			}
			ids = append(ids, id)
		}
	}

	// Experiments execute concurrently (their goroutines hold no pool tokens
	// — only leaf simulation cells acquire them, so sharing one pool cannot
	// deadlock), but tables buffer and print strictly in registry order.
	tables := make([]*experiments.Table, len(ids))
	elapsed := make([]time.Duration, len(ids))
	runOne := func(i int, id string) {
		start := time.Now()
		tables[i] = reg[id](opts)
		elapsed[i] = time.Since(start)
	}
	if *jobs > 1 {
		var wg sync.WaitGroup
		wg.Add(len(ids))
		for i, id := range ids {
			go func(i int, id string) {
				defer wg.Done()
				runOne(i, id)
			}(i, id)
		}
		wg.Wait()
	} else {
		for i, id := range ids {
			runOne(i, id)
		}
	}

	for i, id := range ids {
		t := tables[i]
		if *md {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
		if *svgDir != "" {
			if err := writeSVGs(*svgDir, t); err != nil {
				fmt.Fprintf(os.Stderr, "svg: %v\n", err)
				os.Exit(1)
			}
		}
		if *csvDir != "" {
			if err := writeTableCSV(*csvDir, t); err != nil {
				fmt.Fprintf(os.Stderr, "csv: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, elapsed[i].Round(time.Millisecond))
	}
}

func writeTableCSV(dir string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, t.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func writeSVGs(dir string, t *experiments.Table) error {
	if len(t.SVGs) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, fig := range t.SVGs {
		f, err := os.Create(filepath.Join(dir, fig.Name+".svg"))
		if err != nil {
			return err
		}
		if err := fig.Render(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", filepath.Join(dir, fig.Name+".svg"))
	}
	return nil
}

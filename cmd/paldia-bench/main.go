// Command paldia-bench measures the scheduling hot path and emits the
// results as machine-readable JSON (BENCH_sched.json): name, ns/op, B/op and
// allocs/op for every Eq. (1) probing and hardware-selection benchmark, plus
// the Fig. 3 end-to-end regeneration as the wall-clock anchor. `make bench`
// runs it next to the human-readable BENCH_parallel.txt.
//
// With -gate it runs only the allocation-gated benchmarks and exits non-zero
// if any of them allocates — the CI regression tripwire for the
// allocation-free scheduling paths.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/profile"
)

type benchResult struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Gated       bool               `json:"gated,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type benchCase struct {
	name  string
	gated bool // allocs/op must be 0
	fn    func(b *testing.B) map[string]float64
}

// typicalInputs is the grid the monitor loop probes every tick for the
// current device: a few hundred outstanding requests at a vision-model batch
// size, with live demand on the device.
func typicalInputs() perfmodel.Inputs {
	return perfmodel.Inputs{
		Solo: 100 * time.Millisecond, BatchSize: 64, FBR: 0.5, N: 400,
		SLO: 200 * time.Millisecond, ExistingDemand: 0.5, ExistingJobs: 1,
	}
}

// idleInputs is the production shape of a candidate probe: idle hardware,
// with the profile table's contention memo attached the way DesiredHardware
// attaches it.
func idleInputs() perfmodel.Inputs {
	in := typicalInputs()
	in.ExistingDemand, in.ExistingJobs = 0, 0
	in.PenaltyByJobs = penaltyTableFor(in.FBR)
	return in
}

// worstInputs is the largest grid the overhead experiments exercise: a
// language-model batch size under a 4000-request surge (~500 grid points).
func worstInputs() perfmodel.Inputs {
	return perfmodel.Inputs{Solo: 100 * time.Millisecond, BatchSize: 8, FBR: 0.7, N: 4000, SLO: time.Second}
}

func penaltyTableFor(fbr float64) []float64 {
	t := make([]float64, profile.MPSMaxClients+1)
	for k := range t {
		t[k] = profile.Penalty(float64(k) * fbr)
	}
	return t
}

// bestYFanoutReference is the pre-optimization goroutine implementation of
// BestY (materialized candidates, fixed four-way fan-out), kept here as the
// measured baseline for the serial-probe comparison in BENCH_sched.json. The
// production tree contains no goroutines on the scheduling path.
func bestYFanoutReference(in perfmodel.Inputs) (int, time.Duration, bool) {
	cands := perfmodel.Candidates(in)
	if len(cands) == 0 {
		return 0, 0, true
	}
	results := make([]time.Duration, len(cands))
	var wg sync.WaitGroup
	stride := (len(cands) + 3) / 4
	for w := 0; w < len(cands); w += stride {
		lo, hi := w, w+stride
		if hi > len(cands) {
			hi = len(cands)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				results[i] = perfmodel.TMax(in, cands[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	bestI := 0
	for i := 1; i < len(cands); i++ {
		if results[i] < results[bestI] || (results[i] == results[bestI] && cands[i] < cands[bestI]) {
			bestI = i
		}
	}
	return cands[bestI], results[bestI], results[bestI] <= in.SLO
}

// schedState builds the selection/split state the core benchmarks probe:
// ResNet 50 on an M60 under the Fig. 3 surge rate.
func schedState(rate float64) *core.State {
	m := model.MustByName("ResNet 50")
	hw, ok := hardware.ByName("M60")
	if !ok {
		panic("M60 missing from catalog")
	}
	return &core.State{
		Model:        m,
		SLO:          core.DefaultSLO,
		Current:      hw,
		HasCurrent:   true,
		Entry:        profile.Lookup(m, hw),
		PredictedRPS: rate,
		ObservedRPS:  rate,
	}
}

func cases(includeE2E bool) []benchCase {
	cs := []benchCase{
		{"perfmodel/TMax", true, func(b *testing.B) map[string]float64 {
			in := typicalInputs()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				perfmodel.TMax(in, 64)
			}
			return nil
		}},
		{"perfmodel/BestY/typical", true, func(b *testing.B) map[string]float64 {
			in := typicalInputs()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				perfmodel.BestY(in)
			}
			return nil
		}},
		{"perfmodel/BestY/idle-memo", true, func(b *testing.B) map[string]float64 {
			in := idleInputs()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				perfmodel.BestY(in)
			}
			return nil
		}},
		{"perfmodel/BestY/worst-grid", true, func(b *testing.B) map[string]float64 {
			in := worstInputs()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				perfmodel.BestY(in)
			}
			return nil
		}},
		{"perfmodel/BestY-fanout-reference/typical", false, func(b *testing.B) map[string]float64 {
			in := typicalInputs()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bestYFanoutReference(in)
			}
			return nil
		}},
		{"perfmodel/BestY-fanout-reference/worst-grid", false, func(b *testing.B) map[string]float64 {
			in := worstInputs()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bestYFanoutReference(in)
			}
			return nil
		}},
		{"core/SplitY", true, func(b *testing.B) map[string]float64 {
			st := schedState(400)
			p := core.NewPaldia().Policy
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.SplitY(st, 400)
			}
			return nil
		}},
		{"core/DesiredHardware", true, func(b *testing.B) map[string]float64 {
			st := schedState(400)
			p := core.NewPaldia().Policy
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.DesiredHardware(st)
			}
			return nil
		}},
	}
	if includeE2E {
		cs = append(cs, benchCase{"experiments/Fig3-end-to-end", false, func(b *testing.B) map[string]float64 {
			var slo float64
			for i := 0; i < b.N; i++ {
				t := experiments.Fig3(experiments.Options{Seed: uint64(i) + 1, Reps: 1, Scale: 0.12})
				sum, n := 0.0, 0
				for r := range t.Rows {
					if v := experiments.ParsePct(t.Cell(r, len(t.Columns)-1)); v >= 0 {
						sum += v
						n++
					}
				}
				if n > 0 {
					slo = sum / float64(n) * 100
				}
			}
			return map[string]float64{"paldia_slo_pct": slo}
		}})
	}
	return cs
}

func main() {
	var (
		out  = flag.String("out", "BENCH_sched.json", "output path for the JSON results ('-' for stdout)")
		gate = flag.Bool("gate", false, "run only allocation-gated benchmarks and fail if any allocates (skips the end-to-end pass; writes no file unless -out is set explicitly)")
	)
	flag.Parse()
	outSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})

	var results []benchResult
	failed := false
	for _, c := range cases(!*gate) {
		if *gate && !c.gated {
			continue
		}
		var metrics map[string]float64
		r := testing.Benchmark(func(b *testing.B) { metrics = c.fn(b) })
		br := benchResult{
			Name:        c.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Gated:       c.gated,
			Metrics:     metrics,
		}
		results = append(results, br)
		status := ""
		if c.gated && br.AllocsPerOp > 0 {
			status = "  <-- FAIL: gated benchmark allocates"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "%-45s %12.1f ns/op %8d B/op %6d allocs/op%s\n",
			c.name, br.NsPerOp, br.BytesPerOp, br.AllocsPerOp, status)
	}

	if !*gate || outSet {
		doc := struct {
			GeneratedBy string        `json:"generated_by"`
			Go          string        `json:"go"`
			GOMAXPROCS  int           `json:"gomaxprocs"`
			Benchmarks  []benchResult `json:"benchmarks"`
		}{"cmd/paldia-bench", runtime.Version(), runtime.GOMAXPROCS(0), results}
		enc, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
			os.Exit(1)
		}
		enc = append(enc, '\n')
		if *out == "-" {
			os.Stdout.Write(enc)
		} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
			os.Exit(1)
		} else {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "allocation gate FAILED: a gated scheduling benchmark allocates")
		os.Exit(1)
	}
}

// Command paldia-bench measures the scheduling hot path and emits the
// results as machine-readable JSON (BENCH_sched.json): name, ns/op, B/op and
// allocs/op for every Eq. (1) probing and hardware-selection benchmark, plus
// the Fig. 3 end-to-end regeneration as the wall-clock anchor. `make bench`
// runs it next to the human-readable BENCH_parallel.txt.
//
// With -gate it runs only the allocation-gated benchmarks and exits non-zero
// if any of them allocates — the CI regression tripwire for the
// allocation-free scheduling paths. The gate also compares each benchmark's
// ns/op and bytes/op against the committed baseline (-baseline, default
// BENCH_sched.json) and fails on a regression beyond the tolerance;
// re-baseline by committing a fresh `make bench` run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hardware"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

type benchResult struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Gated       bool               `json:"gated,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type benchCase struct {
	name        string
	gated       bool // runs under -gate: ns/op regression-checked vs baseline
	allocExempt bool // gated but allowed to allocate (whole simulations inside)
	fn          func(b *testing.B) map[string]float64
}

// typicalInputs is the grid the monitor loop probes every tick for the
// current device: a few hundred outstanding requests at a vision-model batch
// size, with live demand on the device.
func typicalInputs() perfmodel.Inputs {
	return perfmodel.Inputs{
		Solo: 100 * time.Millisecond, BatchSize: 64, FBR: 0.5, N: 400,
		SLO: 200 * time.Millisecond, ExistingDemand: 0.5, ExistingJobs: 1,
	}
}

// idleInputs is the production shape of a candidate probe: idle hardware,
// with the profile table's contention memo attached the way DesiredHardware
// attaches it.
func idleInputs() perfmodel.Inputs {
	in := typicalInputs()
	in.ExistingDemand, in.ExistingJobs = 0, 0
	in.PenaltyByJobs = penaltyTableFor(in.FBR)
	return in
}

// worstInputs is the largest grid the overhead experiments exercise: a
// language-model batch size under a 4000-request surge (~500 grid points).
func worstInputs() perfmodel.Inputs {
	return perfmodel.Inputs{Solo: 100 * time.Millisecond, BatchSize: 8, FBR: 0.7, N: 4000, SLO: time.Second}
}

func penaltyTableFor(fbr float64) []float64 {
	t := make([]float64, profile.MPSMaxClients+1)
	for k := range t {
		t[k] = profile.Penalty(float64(k) * fbr)
	}
	return t
}

// bestYFanoutReference is the pre-optimization goroutine implementation of
// BestY (materialized candidates, fixed four-way fan-out), kept here as the
// measured baseline for the serial-probe comparison in BENCH_sched.json. The
// production tree contains no goroutines on the scheduling path.
func bestYFanoutReference(in perfmodel.Inputs) (int, time.Duration, bool) {
	cands := perfmodel.Candidates(in)
	if len(cands) == 0 {
		return 0, 0, true
	}
	results := make([]time.Duration, len(cands))
	var wg sync.WaitGroup
	stride := (len(cands) + 3) / 4
	for w := 0; w < len(cands); w += stride {
		lo, hi := w, w+stride
		if hi > len(cands) {
			hi = len(cands)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				results[i] = perfmodel.TMax(in, cands[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	bestI := 0
	for i := 1; i < len(cands); i++ {
		if results[i] < results[bestI] || (results[i] == results[bestI] && cands[i] < cands[bestI]) {
			bestI = i
		}
	}
	return cands[bestI], results[bestI], results[bestI] <= in.SLO
}

// schedState builds the selection/split state the core benchmarks probe:
// ResNet 50 on an M60 under the Fig. 3 surge rate.
func schedState(rate float64) *core.State {
	m := model.MustByName("ResNet 50")
	hw, ok := hardware.ByName("M60")
	if !ok {
		panic("M60 missing from catalog")
	}
	return &core.State{
		Model:        m,
		SLO:          core.DefaultSLO,
		Current:      hw,
		HasCurrent:   true,
		Entry:        profile.Lookup(m, hw),
		PredictedRPS: rate,
		ObservedRPS:  rate,
	}
}

// shardedGridCase measures the sharded executor's wall-clock scaling: the
// same fixed 4-tenant grid at 1, 2 and 4 workers, so the ns/op curve across
// the three cases is the speedup curve. Whole simulations run inside, so the
// cases are exempt from the zero-alloc check but still ns/op-gated against
// the baseline (normalized like every other gated benchmark).
func shardedGridCase(workers int) benchCase {
	return benchCase{
		name:        fmt.Sprintf("shard/ShardedScale/shards=%d", workers),
		gated:       true,
		allocExempt: true,
		fn: func(b *testing.B) map[string]float64 {
			var requests int
			for i := 0; i < b.N; i++ {
				curve := trace.PoissonCurve(sim.NewRNG(7), 240, time.Minute)
				lanes := curve.Partition(4)
				cfgs := make([]core.Config, len(lanes))
				for j, lane := range lanes {
					cfgs[j] = core.Config{
						Model:   model.MustByName("ResNet 50"),
						Stream:  lane.Stream(sim.NewRNG(7)),
						Scheme:  core.NewPaldia(),
						Seed:    7,
						Metrics: core.MetricsOnline,
					}
				}
				res := shard.Run(cfgs, shard.Options{Shards: workers})
				requests = 0
				for _, r := range res {
					requests += r.Requests
				}
			}
			return map[string]float64{"requests_per_op": float64(requests)}
		},
	}
}

func cases(includeE2E bool) []benchCase {
	cs := []benchCase{
		{"perfmodel/TMax", true, false, func(b *testing.B) map[string]float64 {
			in := typicalInputs()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				perfmodel.TMax(in, 64)
			}
			return nil
		}},
		{"perfmodel/BestY/typical", true, false, func(b *testing.B) map[string]float64 {
			in := typicalInputs()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				perfmodel.BestY(in)
			}
			return nil
		}},
		{"perfmodel/BestY/idle-memo", true, false, func(b *testing.B) map[string]float64 {
			in := idleInputs()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				perfmodel.BestY(in)
			}
			return nil
		}},
		{"perfmodel/BestY/worst-grid", true, false, func(b *testing.B) map[string]float64 {
			in := worstInputs()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				perfmodel.BestY(in)
			}
			return nil
		}},
		{"perfmodel/BestY-fanout-reference/typical", false, false, func(b *testing.B) map[string]float64 {
			in := typicalInputs()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bestYFanoutReference(in)
			}
			return nil
		}},
		{"perfmodel/BestY-fanout-reference/worst-grid", false, false, func(b *testing.B) map[string]float64 {
			in := worstInputs()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bestYFanoutReference(in)
			}
			return nil
		}},
		{"core/SplitY", true, false, func(b *testing.B) map[string]float64 {
			st := schedState(400)
			p := core.NewPaldia().Policy
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.SplitY(st, 400)
			}
			return nil
		}},
		{"core/DesiredHardware", true, false, func(b *testing.B) map[string]float64 {
			st := schedState(400)
			p := core.NewPaldia().Policy
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.DesiredHardware(st)
			}
			return nil
		}},
	}
	if includeE2E {
		cs = append(cs, benchCase{"experiments/Fig3-end-to-end", false, false, func(b *testing.B) map[string]float64 {
			var slo float64
			for i := 0; i < b.N; i++ {
				t := experiments.Fig3(experiments.Options{Seed: uint64(i) + 1, Reps: 1, Scale: 0.12})
				sum, n := 0.0, 0
				for r := range t.Rows {
					if v := experiments.ParsePct(t.Cell(r, len(t.Columns)-1)); v >= 0 {
						sum += v
						n++
					}
				}
				if n > 0 {
					slo = sum / float64(n) * 100
				}
			}
			return map[string]float64{"paldia_slo_pct": slo}
		}})
	}
	for _, name := range predict.Names() {
		cs = append(cs, forecasterCase(name))
	}
	cs = append(cs, shardedGridCase(1), shardedGridCase(2), shardedGridCase(4))
	cs = append(cs, streamWriterCase(), curveStreamCase())
	cs = append(cs, cloneDispatchCase(), ageTrackerCase())
	return cs
}

// forecasterCase measures one forecaster's steady-state Observe+Predict
// cycle — the work the serving runtime does once per observation window and
// once per monitor tick. The ring and scratch are preallocated, so the cycle
// must stay allocation-free (the seasonal model's amortized refit scan runs
// inside the loop and is included in ns/op).
func forecasterCase(name string) benchCase {
	return benchCase{
		name:  "predict/Observe+Predict/" + name,
		gated: true,
		fn: func(b *testing.B) map[string]float64 {
			w := 500 * time.Millisecond
			f, err := predict.NewByName(name, w)
			if err != nil {
				panic(err)
			}
			// Warm past the first seasonal refits (the counts carry a
			// 17-window period, so the seasonal model measures its fitted
			// path, not the EWMA fallback).
			count := func(i int) int { return 30 + i%17 }
			for i := 0; i < 4096; i++ {
				f.Observe(time.Duration(i+1)*w, count(i))
				f.PredictRPS(time.Duration(i+1)*w, 15*time.Second)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now := time.Duration(4096+i+1) * w
				f.Observe(now, count(i))
				f.PredictRPS(now, 15*time.Second)
			}
			return nil
		},
	}
}

// streamWriterCase measures the streaming telemetry path per request: one
// full lifecycle (arrival through completion) through the StreamWriter —
// event-feed JSONL encoding, span assembly, span JSONL encoding, span
// recycling — against discarded writers. Steady-state allocations are the
// assembler's per-job bookkeeping, so the case is alloc-exempt but ns/op-
// and bytes/op-gated.
func streamWriterCase() benchCase {
	return benchCase{
		name:        "telemetry/StreamWriter-lifecycle",
		gated:       true,
		allocExempt: true,
		fn: func(b *testing.B) map[string]float64 {
			w := telemetry.NewStreamWriter(io.Discard, io.Discard)
			defer w.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req, at := int64(i), time.Duration(i)*time.Microsecond
				e := telemetry.Ev(at, telemetry.Arrived)
				e.Req = req
				w.Event(e)
				e = telemetry.Ev(at+time.Millisecond, telemetry.Dispatched)
				e.Req, e.Job, e.Spec, e.N, e.Detail = req, req+1, "M60", 1, "spatial"
				w.Event(e)
				for _, k := range []telemetry.Kind{telemetry.Queued, telemetry.ExecStart, telemetry.ExecEnd} {
					e = telemetry.Ev(at+2*time.Millisecond, k)
					e.Req, e.Job = req, req+1
					w.Event(e)
				}
				e = telemetry.Ev(at+40*time.Millisecond, telemetry.Completed)
				e.Req = req
				w.Event(e)
			}
			return nil
		},
	}
}

// curveStreamCase measures lazy arrival generation: draining one minute of a
// 240 rps Poisson curve (~14k arrivals) through the batched per-bucket
// realization — the generator behind every -stream run.
func curveStreamCase() benchCase {
	return benchCase{
		name:        "trace/CurveStream-minute",
		gated:       true,
		allocExempt: true,
		fn: func(b *testing.B) map[string]float64 {
			curve := trace.PoissonCurve(sim.NewRNG(7), 240, time.Minute)
			b.ReportAllocs()
			b.ResetTimer()
			n := 0
			for i := 0; i < b.N; i++ {
				s := curve.Stream(sim.NewRNG(7))
				n = 0
				for {
					if _, ok := s.Next(); !ok {
						break
					}
					n++
				}
			}
			return map[string]float64{"requests_per_op": float64(n)}
		},
	}
}

// cloneDispatchCase measures one steady-state step of a clone-2 run: the
// redundant dispatcher's set recycling, paired per-pool launches, device
// racing and sibling cancellation, all through the public Running API. The
// pooled lifecycles keep the step allocation-free, so the case is fully
// gated; the simulation is re-wound off the timer when the trace runs out.
func cloneDispatchCase() benchCase {
	return benchCase{
		name:  "core/CloneDispatch-steady-step",
		gated: true,
		fn: func(b *testing.B) map[string]float64 {
			const (
				step    = 250 * time.Millisecond
				horizon = 600 * time.Second
				rps     = 80
			)
			var ru *core.Running
			var now time.Duration
			fresh := func() {
				ru = core.Start(core.Config{
					Model:  model.MustByName("ResNet 50"),
					Trace:  trace.Poisson(sim.NewRNG(7), rps, horizon),
					Scheme: core.NewPaldiaCloneK(2, false),
					Seed:   7,
				})
				ru.StepTo(30 * time.Second)
				now = ru.Now()
			}
			fresh()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if now+step > horizon-30*time.Second {
					b.StopTimer()
					fresh()
					b.StartTimer()
				}
				now += step
				ru.StepTo(now)
			}
			return map[string]float64{"requests_per_op": rps * step.Seconds()}
		},
	}
}

// ageTrackerCase measures the hedge trigger's hot pair: recording one
// completion latency into the online percentile sketch and reading the
// current hedge threshold back. Both run per request on the hedged path, so
// they are fully gated — zero allocations.
func ageTrackerCase() benchCase {
	return benchCase{
		name:  "metrics/AgeTracker-add+threshold",
		gated: true,
		fn: func(b *testing.B) map[string]float64 {
			tr := metrics.NewAgeTracker(95)
			for i := 0; i < 256; i++ {
				tr.Add(time.Duration(i%40+80) * time.Millisecond)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Add(time.Duration(i%40+80) * time.Millisecond)
				_ = tr.Threshold()
			}
			return nil
		},
	}
}

func main() { os.Exit(run()) }

func run() int {
	var (
		out      = flag.String("out", "BENCH_sched.json", "output path for the JSON results ('-' for stdout)")
		gate     = flag.Bool("gate", false, "run only allocation-gated benchmarks and fail if any allocates, slows, or grows bytes/op past -tolerance vs -baseline (skips the end-to-end pass; writes no file unless -out is set explicitly)")
		baseline = flag.String("baseline", "BENCH_sched.json", "committed baseline for the -gate ns/op + bytes/op regression check ('' disables)")
		tol      = flag.Float64("tolerance", 0.25, "allowed relative ns/op or bytes/op regression vs the baseline before -gate fails")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote cpu profile to %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote allocation profile to %s\n", *memprofile)
		}()
	}
	outSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})

	var results []benchResult
	failed := false
	for _, c := range cases(!*gate) {
		if *gate && !c.gated {
			continue
		}
		var metrics map[string]float64
		r := testing.Benchmark(func(b *testing.B) { metrics = c.fn(b) })
		br := benchResult{
			Name:        c.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Gated:       c.gated,
			Metrics:     metrics,
		}
		if rpo := br.Metrics["requests_per_op"]; rpo > 0 && br.NsPerOp > 0 {
			// Derived throughput for the simulation-scale cases: simulated
			// requests retired per wall-clock second.
			br.Metrics["requests_per_sec"] = rpo / (br.NsPerOp / 1e9)
		}
		results = append(results, br)
		status := ""
		if c.gated && !c.allocExempt && br.AllocsPerOp > 0 {
			status = "  <-- FAIL: gated benchmark allocates"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "%-45s %12.1f ns/op %8d B/op %6d allocs/op%s\n",
			c.name, br.NsPerOp, br.BytesPerOp, br.AllocsPerOp, status)
	}

	if !*gate || outSet {
		doc := struct {
			GeneratedBy string        `json:"generated_by"`
			Go          string        `json:"go"`
			GOMAXPROCS  int           `json:"gomaxprocs"`
			Benchmarks  []benchResult `json:"benchmarks"`
		}{"cmd/paldia-bench", runtime.Version(), runtime.GOMAXPROCS(0), results}
		enc, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
			return 1
		}
		enc = append(enc, '\n')
		if *out == "-" {
			os.Stdout.Write(enc)
		} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
			return 1
		} else {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
		}
	}
	if *gate && *baseline != "" && !checkBaseline(*baseline, results, *tol) {
		failed = true
	}
	if failed {
		fmt.Fprintln(os.Stderr, "scheduling gate FAILED (allocation or ns/op regression above)")
		return 1
	}
	return 0
}

// checkBaseline compares each result's ns/op and bytes/op against the
// committed baseline file and reports false when any benchmark regressed
// beyond tol. The CI runner and the machine that produced the baseline
// differ in raw speed, so the per-benchmark ns/op ratios are first
// normalized by their median: a uniform host factor cancels, and what
// remains is one path regressing relative to the others — the thing a code
// change can actually cause. Bytes/op needs no normalization (the
// simulations are deterministic, so allocation volume is host-independent)
// and is compared directly. Speedups past the same margin only hint at
// re-baselining (commit a fresh `make bench` run); a missing or unreadable
// baseline warns and passes, so the gate keeps working on branches that
// predate the file.
func checkBaseline(path string, results []benchResult, tol float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "baseline %s unreadable (%v); skipping ns/op regression check\n", path, err)
		return true
	}
	var doc struct {
		Benchmarks []benchResult `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "baseline %s malformed (%v); skipping ns/op regression check\n", path, err)
		return true
	}
	base := make(map[string]benchResult, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		base[b.Name] = b
	}
	type cmp struct {
		name                 string
		have, want           float64
		haveBytes, wantBytes int64
		ratio                float64
	}
	var cmps []cmp
	for _, r := range results {
		if b, ok := base[r.Name]; ok && b.NsPerOp > 0 {
			cmps = append(cmps, cmp{
				name: r.Name, have: r.NsPerOp, want: b.NsPerOp,
				haveBytes: r.BytesPerOp, wantBytes: b.BytesPerOp,
				ratio: r.NsPerOp / b.NsPerOp,
			})
		} else {
			fmt.Fprintf(os.Stderr, "%-45s not in baseline; skipped\n", r.Name)
		}
	}
	if len(cmps) == 0 {
		fmt.Fprintf(os.Stderr, "baseline %s shares no benchmarks with this run; skipping ns/op regression check\n", path)
		return true
	}
	ratios := make([]float64, len(cmps))
	for i, c := range cmps {
		ratios[i] = c.ratio
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if n := len(ratios); n%2 == 0 {
		median = (ratios[n/2-1] + ratios[n/2]) / 2
	}
	fmt.Fprintf(os.Stderr, "host speed vs baseline machine: %.2fx (median ratio; per-benchmark checks are normalized by it)\n", median)
	ok := true
	for _, c := range cmps {
		if c.wantBytes > 0 && float64(c.haveBytes) > (1+tol)*float64(c.wantBytes) {
			fmt.Fprintf(os.Stderr, "%-45s %8d B/op vs baseline %d  <-- FAIL: bytes/op regression beyond %.0f%%\n", c.name, c.haveBytes, c.wantBytes, tol*100)
			ok = false
		}
		norm := c.ratio / median
		switch {
		case norm > 1+tol:
			fmt.Fprintf(os.Stderr, "%-45s %12.1f ns/op vs baseline %.1f (normalized %.2fx)  <-- FAIL: regression beyond %.0f%%\n",
				c.name, c.have, c.want, norm, tol*100)
			ok = false
		case norm < 1-tol:
			fmt.Fprintf(os.Stderr, "%-45s %12.1f ns/op vs baseline %.1f (normalized %.2fx)  — faster; consider re-baselining (commit a fresh `make bench`)\n",
				c.name, c.have, c.want, norm)
		default:
			fmt.Fprintf(os.Stderr, "%-45s %12.1f ns/op vs baseline %.1f (normalized %.2fx)  ok\n",
				c.name, c.have, c.want, norm)
		}
	}
	return ok
}

// Command paldia-analyze post-processes paldia-sim exports: a per-request
// CSV dump (`-csv`), per-request telemetry spans (`-spans-out` JSONL), or
// sampled time series (`-series-out` CSV). For record CSVs it prints SLO
// compliance, percentiles, the P99 component breakdown and a terminal CDF;
// for spans a latency-component breakdown with the slowest requests; for
// series a per-series summary and optionally an SVG timeline.
//
//	paldia-sim -model "VGG 19" -scheme molecule-cost -csv run.csv
//	paldia-analyze run.csv
//	paldia-analyze -slo 150ms -svg cdf.svg run.csv
//	paldia-analyze -spans spans.jsonl
//	paldia-analyze -series series.csv -timeline-svg timeline.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/plot"
	"repro/internal/svgplot"
	"repro/internal/telemetry"
)

func main() {
	var (
		slo         = flag.Duration("slo", 200*time.Millisecond, "SLO used to (re)judge requests")
		svgOut      = flag.String("svg", "", "write the latency CDF as an SVG to this path")
		spansPath   = flag.String("spans", "", "analyze a spans JSONL file (paldia-sim -spans-out)")
		seriesPath  = flag.String("series", "", "analyze a series CSV file (paldia-sim -series-out)")
		timelineSVG = flag.String("timeline-svg", "", "with -series, render the series as an SVG chart")
	)
	flag.Parse()
	if *spansPath != "" {
		analyzeSpans(*spansPath, *slo)
	}
	if *seriesPath != "" {
		analyzeSeries(*seriesPath, *timelineSVG)
	}
	if flag.NArg() != 1 {
		if *spansPath != "" || *seriesPath != "" {
			return
		}
		fmt.Fprintln(os.Stderr, "usage: paldia-analyze [-slo D] [-svg out.svg] records.csv")
		fmt.Fprintln(os.Stderr, "       paldia-analyze -spans spans.jsonl")
		fmt.Fprintln(os.Stderr, "       paldia-analyze -series series.csv [-timeline-svg out.svg]")
		os.Exit(1)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	col, err := metrics.ReadCSV(f, *slo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if col.Count() == 0 {
		fmt.Fprintln(os.Stderr, "no records")
		os.Exit(1)
	}

	fmt.Printf("records         %d\n", col.Count())
	fmt.Printf("SLO compliance  %.2f%% (SLO %v, %d violations)\n",
		col.SLOCompliance()*100, *slo, col.Violations())
	fmt.Printf("latency         P50 %v  P80 %v  P95 %v  P99 %v  mean %v\n",
		col.Percentile(50).Round(time.Microsecond),
		col.Percentile(80).Round(time.Microsecond),
		col.Percentile(95).Round(time.Microsecond),
		col.Percentile(99).Round(time.Microsecond),
		col.Mean().Round(time.Microsecond))
	b := col.TailBreakdown(99, 99.9)
	fmt.Printf("P99 breakdown   min %v | batch %v | queue %v | interf %v | cold %v\n\n",
		b.MinExec.Round(time.Microsecond), b.BatchWait.Round(time.Microsecond),
		b.QueueDelay.Round(time.Microsecond), b.Interference.Round(time.Microsecond),
		b.ColdStart.Round(time.Microsecond))

	var vals []float64
	for _, p := range col.CDF(60) {
		v := p.Latency.Seconds() * 1000
		if v > 2*slo.Seconds()*1000 {
			v = 2 * slo.Seconds() * 1000
		}
		vals = append(vals, v)
	}
	fmt.Print(plot.CDF(fmt.Sprintf("latency CDF (ms, clipped at 2xSLO=%v)", 2**slo),
		[]string{"latency"}, [][]float64{vals}, 56, 12))

	if *svgOut != "" {
		pts := make([][2]float64, len(vals))
		for i, v := range vals {
			pts[i] = [2]float64{v, float64(i+1) / float64(len(vals))}
		}
		fig := &svgplot.Lines{
			Title:  "End-to-end latency CDF",
			XLabel: "latency (ms)", YLabel: "fraction", YMax: 1,
			Series: []svgplot.LineSeries{{Name: "latency", Points: pts}},
		}
		out, err := os.Create(*svgOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer out.Close()
		if err := fig.Render(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *svgOut)
	}
}

// analyzeSpans prints the latency-component breakdown of a spans JSONL
// export: where completed requests spent their time (batcher, container
// wait, device queue, execution) and the slowest individual requests.
func analyzeSpans(path string, slo time.Duration) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	spans, err := telemetry.ReadSpansJSONL(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var done []*telemetry.Span
	failed := 0
	for _, s := range spans {
		if s.Failed {
			failed++
		}
		if s.Done() && !s.Failed {
			done = append(done, s)
		}
	}
	fmt.Printf("spans           %d (%d completed ok, %d failed)\n", len(spans), len(done), failed)
	if len(done) == 0 {
		return
	}
	comp := func(name string, get func(*telemetry.Span) time.Duration) {
		vals := make([]time.Duration, len(done))
		var sum time.Duration
		for i, s := range done {
			vals[i] = get(s)
			sum += vals[i]
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		pct := func(p float64) time.Duration {
			i := int(p / 100 * float64(len(vals)-1))
			return vals[i]
		}
		fmt.Printf("  %-12s mean %10v   P50 %10v   P99 %10v\n", name,
			(sum / time.Duration(len(done))).Round(time.Microsecond),
			pct(50).Round(time.Microsecond), pct(99).Round(time.Microsecond))
	}
	comp("batch wait", (*telemetry.Span).BatchWait)
	comp("cold start", (*telemetry.Span).ColdStart)
	comp("queue", (*telemetry.Span).QueueDelay)
	comp("exec", (*telemetry.Span).Exec)
	comp("latency", (*telemetry.Span).Latency)

	viol := 0
	for _, s := range done {
		if s.Latency() > slo {
			viol++
		}
	}
	fmt.Printf("  SLO %v: %d/%d over (%.2f%% compliant)\n\n", slo, viol, len(done),
		100*(1-float64(viol)/float64(len(done))))

	slowest := append([]*telemetry.Span(nil), done...)
	sort.Slice(slowest, func(i, j int) bool { return slowest[i].Latency() > slowest[j].Latency() })
	n := 5
	if n > len(slowest) {
		n = len(slowest)
	}
	fmt.Println("  slowest requests:")
	for _, s := range slowest[:n] {
		fmt.Printf("    req %-6d t=%-10v latency %10v = batch %v + cold %v + queue %v + exec %v  (%s batch=%d node=%d %s)\n",
			s.Req, s.Arrived.Round(time.Millisecond), s.Latency().Round(time.Microsecond),
			s.BatchWait().Round(time.Microsecond), s.ColdStart().Round(time.Microsecond),
			s.QueueDelay().Round(time.Microsecond), s.Exec().Round(time.Microsecond),
			s.Mode, s.BatchSize, s.Node, s.Spec)
	}
	fmt.Println()
}

// analyzeSeries prints a summary of every sampled series and optionally
// renders the set as an SVG timeline.
func analyzeSeries(path, svgOut string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	ss, err := telemetry.ReadSeriesCSV(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("series          %d\n", ss.Len())
	for _, name := range ss.Names() {
		s := ss.Get(name)
		min, max, sum := 0.0, 0.0, 0.0
		for i, p := range s.Points {
			if i == 0 || p.Value < min {
				min = p.Value
			}
			if i == 0 || p.Value > max {
				max = p.Value
			}
			sum += p.Value
		}
		mean := 0.0
		if len(s.Points) > 0 {
			mean = sum / float64(len(s.Points))
		}
		fmt.Printf("  %-18s %5d samples   min %10.4g   mean %10.4g   max %10.4g   last %10.4g\n",
			name, len(s.Points), min, mean, max, s.Last().Value)
	}
	fmt.Println()
	if svgOut != "" {
		out, err := os.Create(svgOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer out.Close()
		if err := ss.TimelineSVG(out, "sampled runtime series"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", svgOut)
	}
}

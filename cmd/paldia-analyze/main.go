// Command paldia-analyze post-processes a per-request CSV dump written by
// `paldia-sim -csv`: SLO compliance, percentiles, the P99 component
// breakdown, a terminal CDF, and optionally an SVG of the CDF.
//
//	paldia-sim -model "VGG 19" -scheme molecule-cost -csv run.csv
//	paldia-analyze run.csv
//	paldia-analyze -slo 150ms -svg cdf.svg run.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/plot"
	"repro/internal/svgplot"
)

func main() {
	var (
		slo    = flag.Duration("slo", 200*time.Millisecond, "SLO used to (re)judge requests")
		svgOut = flag.String("svg", "", "write the latency CDF as an SVG to this path")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: paldia-analyze [-slo D] [-svg out.svg] records.csv")
		os.Exit(1)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	col, err := metrics.ReadCSV(f, *slo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if col.Count() == 0 {
		fmt.Fprintln(os.Stderr, "no records")
		os.Exit(1)
	}

	fmt.Printf("records         %d\n", col.Count())
	fmt.Printf("SLO compliance  %.2f%% (SLO %v, %d violations)\n",
		col.SLOCompliance()*100, *slo, col.Violations())
	fmt.Printf("latency         P50 %v  P80 %v  P95 %v  P99 %v  mean %v\n",
		col.Percentile(50).Round(time.Microsecond),
		col.Percentile(80).Round(time.Microsecond),
		col.Percentile(95).Round(time.Microsecond),
		col.Percentile(99).Round(time.Microsecond),
		col.Mean().Round(time.Microsecond))
	b := col.TailBreakdown(99, 99.9)
	fmt.Printf("P99 breakdown   min %v | batch %v | queue %v | interf %v | cold %v\n\n",
		b.MinExec.Round(time.Microsecond), b.BatchWait.Round(time.Microsecond),
		b.QueueDelay.Round(time.Microsecond), b.Interference.Round(time.Microsecond),
		b.ColdStart.Round(time.Microsecond))

	var vals []float64
	for _, p := range col.CDF(60) {
		v := p.Latency.Seconds() * 1000
		if v > 2*slo.Seconds()*1000 {
			v = 2 * slo.Seconds() * 1000
		}
		vals = append(vals, v)
	}
	fmt.Print(plot.CDF(fmt.Sprintf("latency CDF (ms, clipped at 2xSLO=%v)", 2**slo),
		[]string{"latency"}, [][]float64{vals}, 56, 12))

	if *svgOut != "" {
		pts := make([][2]float64, len(vals))
		for i, v := range vals {
			pts[i] = [2]float64{v, float64(i+1) / float64(len(vals))}
		}
		fig := &svgplot.Lines{
			Title:  "End-to-end latency CDF",
			XLabel: "latency (ms)", YLabel: "fraction", YMax: 1,
			Series: []svgplot.LineSeries{{Name: "latency", Points: pts}},
		}
		out, err := os.Create(*svgOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer out.Close()
		if err := fig.Render(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *svgOut)
	}
}

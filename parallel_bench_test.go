// Benchmarks for the parallel experiment runner: the same reduced-scale Fig3
// grid (12 models x 5 schemes) executed serially and fanned out over 4
// workers. Because results are collected indexed by cell, both variants
// produce identical tables — the benchmarks measure pure wall-time gain.
// `make bench` writes benchstat-comparable output to BENCH_parallel.txt.
package repro_test

import (
	"testing"

	"repro/internal/experiments"
)

// benchGridOptions shrinks the grid benchmark below benchOptions scale so a
// -count 3 comparison pass stays in the minutes.
func benchGridOptions(seed uint64, parallelism int) experiments.Options {
	return experiments.Options{Seed: seed, Reps: 1, Scale: 0.02, Parallelism: parallelism}
}

func benchmarkFig3At(b *testing.B, parallelism int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := experiments.Fig3(benchGridOptions(uint64(i)+1, parallelism))
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig3GridSerial(b *testing.B)    { benchmarkFig3At(b, 1) }
func BenchmarkFig3GridParallel4(b *testing.B) { benchmarkFig3At(b, 4) }

// Benchmarks regenerating every table and figure of the paper's evaluation,
// one benchmark per experiment, at reduced scale so a full -bench=. pass
// stays in the minutes. Each benchmark reports, beyond wall time, the
// headline quantity of its figure (typically Paldia's SLO compliance) as a
// custom metric. Run the full-scale evaluation with cmd/paldia-experiments.
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchOptions keeps each iteration to a few seconds: one repetition and
// ~3-minute traces.
func benchOptions(seed uint64) experiments.Options {
	return experiments.Options{Seed: seed, Reps: 1, Scale: 0.12}
}

// reportPaldiaCompliance extracts Paldia's compliance from a table whose
// schemeCol names the scheme and pctCol carries compliance, and reports it.
func reportPaldiaCompliance(b *testing.B, t *experiments.Table, schemeCol, pctCol int) {
	b.Helper()
	if row := t.FindRow(schemeCol, "Paldia"); row >= 0 {
		if v := experiments.ParsePct(t.Cell(row, pctCol)); v >= 0 {
			b.ReportMetric(v*100, "paldia-slo-%")
		}
	}
}

func BenchmarkFig1Motivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig1(benchOptions(uint64(i) + 1))
		// Offline Hybrid is the motivation figure's headline.
		if row := t.FindRow(0, "Offline Hybrid"); row >= 0 {
			if v := experiments.ParsePct(t.Cell(row, 3)); v >= 0 {
				b.ReportMetric(v*100, "hybrid-slo-%")
			}
		}
	}
}

func BenchmarkTable2Hardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table2()
		b.ReportMetric(float64(len(t.Rows)), "nodes")
	}
}

func BenchmarkFig3SLOCompliance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig3(benchOptions(uint64(i) + 1))
		// Average Paldia compliance across the 12 vision models (last column).
		sum, n := 0.0, 0
		for r := range t.Rows {
			if v := experiments.ParsePct(t.Cell(r, len(t.Columns)-1)); v >= 0 {
				sum += v
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n)*100, "paldia-slo-%")
		}
	}
}

func BenchmarkFig4TailBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig4(benchOptions(uint64(i) + 1))
		reportPaldiaCompliance(b, t, 1, 7)
	}
}

func BenchmarkFig5Cost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig5(benchOptions(uint64(i) + 1))
		reportPaldiaCompliance(b, t, 1, 4)
	}
}

func BenchmarkFig6LatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig6(benchOptions(uint64(i) + 1))
		reportPaldiaCompliance(b, t, 0, 6)
	}
}

func BenchmarkFig7GoodputAndPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig7(benchOptions(uint64(i) + 1))
		if row := t.FindRow(0, "Paldia"); row >= 0 {
			var ratio float64
			if _, err := fmt.Sscan(t.Cell(row, 3), &ratio); err == nil {
				b.ReportMetric(ratio, "paldia-goodput-ratio")
			}
		}
	}
}

func BenchmarkFig8Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig8(benchOptions(uint64(i) + 1))
		if row := t.FindRow(0, "Paldia"); row >= 0 {
			if v := experiments.ParsePct(t.Cell(row, 2)); v >= 0 {
				b.ReportMetric(v*100, "paldia-gpu-util-%")
			}
		}
	}
}

func BenchmarkFig9LLMSLO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig9(benchOptions(uint64(i) + 1))
		sum, n := 0.0, 0
		for r := range t.Rows {
			if v := experiments.ParsePct(t.Cell(r, len(t.Columns)-1)); v >= 0 {
				sum += v
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n)*100, "paldia-slo-%")
		}
	}
}

func BenchmarkFig10LLMCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig10(benchOptions(uint64(i) + 1))
		b.ReportMetric(float64(len(t.Rows)), "models")
	}
}

func BenchmarkFig11Oracle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig11(benchOptions(uint64(i) + 1))
		reportPaldiaCompliance(b, t, 1, 2)
	}
}

func BenchmarkFig12RealWorldTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig12(benchOptions(uint64(i) + 1))
		reportPaldiaCompliance(b, t, 2, 3)
	}
}

func BenchmarkFig13AdverseScenarios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig13(benchOptions(uint64(i) + 1))
		reportPaldiaCompliance(b, t, 1, 2)
	}
}

func BenchmarkTable3MixedWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table3(benchOptions(uint64(i) + 1))
		reportPaldiaCompliance(b, t, 0, 1)
	}
}

func BenchmarkColdStartReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.ColdStarts(benchOptions(uint64(i) + 1))
		b.ReportMetric(float64(len(t.Rows)), "policies")
	}
}

func BenchmarkCPUvsGPUCostClaim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.CPUvsGPUCost()
		b.ReportMetric(float64(len(t.Rows)), "options")
	}
}

func BenchmarkModelError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.ModelError(benchOptions(uint64(i) + 1))
		if v := experiments.ParsePct(t.Cell(1, 1)); v >= 0 { // median row
			b.ReportMetric(v*100, "median-err-%")
		}
	}
}

func BenchmarkMultiTenant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.MultiTenant(benchOptions(uint64(i) + 1))
		reportPaldiaCompliance(b, t, 0, 1)
	}
}

func BenchmarkAblationPrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationPrediction(benchOptions(uint64(i) + 1))
	}
}

func BenchmarkAblationHybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.AblationHybrid(benchOptions(uint64(i) + 1))
		if row := t.FindRow(0, "hybrid (Eq. 1 split)"); row >= 0 {
			if v := experiments.ParsePct(t.Cell(row, 1)); v >= 0 {
				b.ReportMetric(v*100, "hybrid-slo-%")
			}
		}
	}
}

func BenchmarkAblationWaitLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationWaitLimit(benchOptions(uint64(i) + 1))
	}
}

func BenchmarkAblationKeepAlive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationKeepAlive(benchOptions(uint64(i) + 1))
	}
}

func BenchmarkAblationDispatchWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationDispatchWindow(benchOptions(uint64(i) + 1))
	}
}

func BenchmarkScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.ScaleOut(benchOptions(uint64(i) + 1))
		if v := experiments.ParsePct(t.Cell(1, 1)); v >= 0 {
			b.ReportMetric(v*100, "scaleout-slo-%")
		}
	}
}

func BenchmarkAblationBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationBatching(benchOptions(uint64(i) + 1))
	}
}

func BenchmarkAblationSLO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationSLO(benchOptions(uint64(i) + 1))
	}
}

// BenchmarkStreamScale serves a long Azure curve through the streaming path
// — lazy arrivals (core.Config.Stream) plus the constant-memory Online
// aggregator — and reports served requests and throughput. It is the perf
// anchor for the scale mode; cmd/paldia-sim -stream runs the same path at
// millions of requests under a heap ceiling (make scale-smoke).
func BenchmarkStreamScale(b *testing.B) {
	var served, elapsed float64
	for i := 0; i < b.N; i++ {
		rng := sim.NewRNG(uint64(i) + 1)
		c := trace.AzureCurve(rng, 450, 30*time.Minute)
		start := time.Now()
		res := core.Run(core.Config{
			Model:   model.MustByName("ResNet 50"),
			Stream:  c.Stream(rng),
			Scheme:  core.NewPaldia(),
			Seed:    uint64(i) + 1,
			Metrics: core.MetricsOnline,
		})
		elapsed += time.Since(start).Seconds()
		served += float64(res.Requests)
	}
	b.ReportMetric(served/float64(b.N), "requests")
	if elapsed > 0 {
		b.ReportMetric(served/elapsed, "requests/s")
	}
}
